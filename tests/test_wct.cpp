// WCT construction (Figure 2) and the Lemma 18 unique-reception bound.
#include "topology/wct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/wct_schedules.hpp"
#include "graph/algorithms.hpp"

namespace nrn::topology {
namespace {

WctParams small_params() {
  WctParams p;
  p.sender_count = 32;
  p.class_count = 4;
  p.clusters_per_class = 6;
  p.cluster_size = 8;
  return p;
}

TEST(Wct, StructureMatchesParams) {
  Rng rng(1);
  const WctNetwork wct(small_params(), rng);
  EXPECT_EQ(wct.senders().size(), 32u);
  EXPECT_EQ(wct.cluster_count(), 24);
  std::int64_t members = 0;
  for (const auto& c : wct.clusters()) members += static_cast<std::int64_t>(c.size());
  EXPECT_EQ(members, 24 * 8);
  EXPECT_EQ(wct.graph().node_count(), 1 + 32 + 24 * 8);
}

TEST(Wct, RadiusTwo) {
  Rng rng(2);
  const WctNetwork wct(small_params(), rng);
  EXPECT_LE(graph::eccentricity(wct.graph(), wct.source()), 2);
  EXPECT_TRUE(graph::is_connected(wct.graph()));
}

TEST(Wct, ClusterMembersShareNeighborhood) {
  Rng rng(3);
  const WctNetwork wct(small_params(), rng);
  for (std::int32_t c = 0; c < wct.cluster_count(); ++c) {
    const auto& nbrs = wct.cluster_senders(c);
    for (const auto member : wct.clusters()[static_cast<size_t>(c)]) {
      EXPECT_EQ(wct.graph().degree(member),
                static_cast<std::int32_t>(nbrs.size()));
      for (const auto s : nbrs) EXPECT_TRUE(wct.graph().has_edge(member, s));
    }
  }
}

TEST(Wct, ClassInclusionProbabilitiesDecay) {
  // Average neighborhood size of class j should be ~ M * 2^-j.
  Rng rng(4);
  WctParams params;
  params.sender_count = 256;
  params.class_count = 4;
  params.clusters_per_class = 40;
  params.cluster_size = 1;
  const WctNetwork wct(params, rng);
  std::vector<double> avg(5, 0.0);
  std::vector<int> count(5, 0);
  for (std::int32_t c = 0; c < wct.cluster_count(); ++c) {
    const auto cls = static_cast<size_t>(wct.cluster_class(c));
    avg[cls] += static_cast<double>(wct.cluster_senders(c).size());
    ++count[cls];
  }
  for (int j = 1; j <= 4; ++j) {
    avg[static_cast<size_t>(j)] /= count[static_cast<size_t>(j)];
    EXPECT_NEAR(avg[static_cast<size_t>(j)], 256.0 * std::pow(2.0, -j),
                256.0 * std::pow(2.0, -j) * 0.5)
        << "class " << j;
  }
}

TEST(Wct, Lemma18UniqueReceptionFractionIsSmall) {
  // For any broadcast set size, the expected fraction of uniquely-served
  // clusters stays O(1/L): with L classes only ~1 class resonates.
  Rng rng(5);
  WctParams params;
  params.sender_count = 256;
  params.class_count = 8;
  params.clusters_per_class = 32;
  params.cluster_size = 1;
  const WctNetwork wct(params, rng);

  for (std::int32_t set_size : {1, 2, 4, 16, 64, 256}) {
    double worst = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> mask(256, false);
      // Random subset of the requested size.
      std::vector<std::int32_t> ids(256);
      for (int i = 0; i < 256; ++i) ids[static_cast<size_t>(i)] = i;
      rng.shuffle(ids);
      for (std::int32_t i = 0; i < set_size; ++i)
        mask[static_cast<size_t>(ids[static_cast<size_t>(i)])] = true;
      worst = std::max(worst, wct.unique_reception_fraction(mask));
    }
    // With 8 classes, at most ~2 classes resonate: fraction <= ~2.5/8.
    EXPECT_LE(worst, 0.40) << "set size " << set_size;
  }
}

TEST(Wct, FromNodeBudgetProducesReasonableDimensions) {
  const auto p = WctParams::from_node_budget(4096);
  EXPECT_GE(p.sender_count, 64);
  EXPECT_GE(p.class_count, 2);
  EXPECT_GE(p.clusters_per_class, 1);
  EXPECT_GE(p.cluster_size, 64);
  Rng rng(6);
  const WctNetwork wct(p, rng);
  EXPECT_TRUE(graph::is_connected(wct.graph()));
}

TEST(Wct, MaskSizeValidated) {
  Rng rng(7);
  const WctNetwork wct(small_params(), rng);
  EXPECT_THROW(wct.unique_reception_fraction(std::vector<bool>(3, true)),
               ContractViolation);
}

TEST(WctSchedules, CodedScheduleCompletes) {
  Rng rng(8);
  const WctNetwork wct(small_params(), rng);
  radio::RadioNetwork net(wct.graph(), radio::FaultModel::receiver(0.5),
                          Rng(9));
  core::WctCodedParams params;
  params.k = 32;
  Rng srng(10);
  const auto r = core::run_wct_rs_coding(net, wct, params, srng);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.rounds, 32);
}

TEST(WctSchedules, CodedScheduleRoundsPerMessageModest) {
  Rng rng(11);
  WctParams params = small_params();
  params.class_count = 5;
  const WctNetwork wct(params, rng);
  radio::RadioNetwork net(wct.graph(), radio::FaultModel::receiver(0.5),
                          Rng(12));
  core::WctCodedParams sched;
  sched.k = 64;
  Rng srng(13);
  const auto r = core::run_wct_rs_coding(net, wct, sched, srng);
  ASSERT_TRUE(r.completed);
  // Theta(log n)-ish per message; must stay far below log^2 scaling.
  EXPECT_LT(r.rounds_per_message(), 120.0);
}

}  // namespace
}  // namespace nrn::topology

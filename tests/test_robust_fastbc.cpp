// Robust FASTBC (Theorem 11): completes under faults, stays near
// diameter-linear, and beats plain FASTBC in the noisy model.
#include "core/robust_fastbc.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/fastbc.hpp"
#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using graph::make_caterpillar;
using graph::make_grid;
using graph::make_path;
using radio::FaultModel;
using radio::RadioNetwork;

BroadcastRunResult run_once(const graph::Graph& g, FaultModel fm,
                            std::uint64_t seed,
                            RobustFastbcParams params = {}) {
  RobustFastbc algo(g, 0, params);
  RadioNetwork net(g, fm, Rng(seed));
  Rng rng(seed ^ 0x9999);
  return algo.run(net, rng);
}

TEST(RobustFastbc, CompletesFaultless) {
  const auto g = make_path(128);
  EXPECT_TRUE(run_once(g, FaultModel::faultless(), 1).completed);
}

TEST(RobustFastbc, CompletesWithReceiverFaults) {
  const auto g = make_path(128);
  EXPECT_TRUE(run_once(g, FaultModel::receiver(0.5), 2).completed);
}

TEST(RobustFastbc, CompletesWithSenderFaults) {
  const auto g = make_path(128);
  EXPECT_TRUE(run_once(g, FaultModel::sender(0.5), 3).completed);
}

TEST(RobustFastbc, CompletesOnGridAndCaterpillar) {
  EXPECT_TRUE(
      run_once(make_grid(10, 10), FaultModel::receiver(0.4), 4).completed);
  EXPECT_TRUE(run_once(make_caterpillar(30, 2), FaultModel::receiver(0.4), 5)
                  .completed);
}

TEST(RobustFastbc, NoisyRoundsScaleLinearlyInD) {
  // Theorem 11: O(D + polylog) -- doubling D should roughly double rounds,
  // not multiply them by log n factors.
  std::vector<double> lengths, rounds;
  for (const std::int32_t n : {128, 256, 512}) {
    const auto g = make_path(n);
    double total = 0;
    for (std::uint64_t s = 0; s < 3; ++s)
      total += static_cast<double>(
          run_once(g, FaultModel::receiver(0.5), 10 + s).rounds);
    lengths.push_back(n);
    rounds.push_back(total / 3);
  }
  const auto fit = fit_power_law(lengths, rounds);
  EXPECT_GT(fit.slope, 0.7);
  EXPECT_LT(fit.slope, 1.3);
}

TEST(RobustFastbc, BeatsPlainFastbcUnderFaults) {
  // The headline claim: FASTBC pays Theta(p/(1-p) D log n) while Robust
  // FASTBC stays O(D) with a constant ~2c = O(1/(1-p)).  At simulation
  // scale the separation shows once p is high enough that FASTBC's
  // per-hop retry tax (Theta(p/(1-p) log n)) dwarfs the robust schedule's
  // fixed window constant; p = 0.7 with a window sized for that fault
  // rate is comfortably past the crossover on a 512-path.
  const auto g = make_path(512);
  const auto fm = FaultModel::receiver(0.7);
  RobustFastbcParams rparams;
  // Large blocks amortize the Chernoff slack so the window multiplier can
  // sit near its mean 1 + 3p/(1-p) = 8; the steady-state cost is then
  // ~2c = 20 rounds/level, independent of log n.
  rparams.block_size = 32;
  rparams.window_multiplier = 10;
  double robust = 0, plain = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    robust +=
        static_cast<double>(run_once(g, fm, 20 + s, rparams).rounds);
    Fastbc fastbc(g, 0);
    RadioNetwork net(g, fm, Rng(30 + s));
    Rng rng(31 + s);
    plain += static_cast<double>(fastbc.run(net, rng).rounds);
  }
  EXPECT_LT(robust * 1.2, plain);
}

TEST(RobustFastbc, WindowMultiplierMustCoverFaultRate) {
  // For p = 0.75 the default window (c = 8) is marginal: hops need
  // ~3/(1-p) = 12 even rounds.  A larger c restores completion.
  const auto g = make_path(96);
  RobustFastbcParams params;
  params.window_multiplier = 24;
  EXPECT_TRUE(run_once(g, FaultModel::receiver(0.75), 6, params).completed);
}

TEST(RobustFastbc, BlockSizeAblation) {
  // Both very small and very large blocks still complete (the schedule is
  // correct for any S >= 1); this pins the parameterization used by the
  // E5 ablation bench.
  const auto g = make_path(128);
  for (const std::int32_t S : {2, 4, 16}) {
    RobustFastbcParams params;
    params.block_size = S;
    EXPECT_TRUE(run_once(g, FaultModel::receiver(0.3), 7, params).completed)
        << "S=" << S;
  }
}

TEST(RobustFastbc, BudgetRespected) {
  const auto g = make_path(64);
  RobustFastbcParams params;
  params.max_rounds = 6;
  const auto r = run_once(g, FaultModel::faultless(), 8, params);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 6);
}

TEST(RobustFastbc, DeterministicGivenSeeds) {
  const auto g = make_grid(8, 8);
  const auto a = run_once(g, FaultModel::receiver(0.5), 99);
  const auto b = run_once(g, FaultModel::receiver(0.5), 99);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(RobustFastbc, WrongNetworkGraphRejected) {
  const auto g1 = make_path(8);
  const auto g2 = make_path(8);
  RobustFastbc algo(g1, 0);
  RadioNetwork net(g2, FaultModel::faultless(), Rng(1));
  Rng rng(1);
  EXPECT_THROW(algo.run(net, rng), ContractViolation);
}

TEST(RobustFastbc, ExposesScheduleParameters) {
  const auto g = make_path(1024);
  RobustFastbc algo(g, 0);
  EXPECT_GE(algo.block_size(), 2);
  EXPECT_GE(algo.window_multiplier(), 1);
  EXPECT_GE(algo.rank_modulus(), algo.tree().max_rank);
}

}  // namespace
}  // namespace nrn::core

// ProtocolRegistry: the global registry enumerates every built-in
// protocol, builds each of them, and rejects unknown names.
#include "sim/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

using testutil::builtin_names;
using testutil::ScenarioFixture;

TEST(ProtocolRegistry, GlobalEnumeratesEveryBuiltin) {
  const auto names = ProtocolRegistry::global().names();
  EXPECT_EQ(names, builtin_names());  // sorted, complete
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ProtocolRegistry, EveryBuiltinConstructsAndReportsItsName) {
  const ScenarioFixture fixture("path:16", "receiver:0.2", 0, 2, 5);
  const ProtocolContext ctx = fixture.context();
  for (const auto& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    const auto protocol = ProtocolRegistry::global().create(name, ctx);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->name(), name);
    EXPECT_FALSE(ProtocolRegistry::global().description(name).empty());
  }
}

TEST(ProtocolRegistry, UnknownNameThrowsListingKnownOnes) {
  const ScenarioFixture fixture("path:8");
  const ProtocolContext ctx = fixture.context();
  try {
    ProtocolRegistry::global().create("flooding", ctx);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("flooding"), std::string::npos);
    EXPECT_NE(what.find("decay"), std::string::npos);
  }
  EXPECT_FALSE(ProtocolRegistry::global().contains("flooding"));
  EXPECT_THROW(ProtocolRegistry::global().description("flooding"), SpecError);
}

TEST(ProtocolRegistry, CustomRegistrationAndOverride) {
  ProtocolRegistry registry;
  register_builtin_protocols(registry);
  EXPECT_EQ(registry.names(), builtin_names());

  // A custom variant: decay under a different name.
  registry.add("my-decay", "ablation variant",
               [](const ProtocolContext& ctx) {
                 return ProtocolRegistry::global().create("decay", ctx);
               });
  EXPECT_TRUE(registry.contains("my-decay"));
  EXPECT_EQ(registry.names().size(), builtin_names().size() + 1);

  const ScenarioFixture fixture("path:12", "none", 0, 1, 3);
  const ProtocolContext ctx = fixture.context();
  const auto protocol = registry.create("my-decay", ctx);
  radio::RadioNetwork net(fixture.graph, fixture.scenario.fault, Rng(1));
  Rng rng(2);
  const auto report = protocol->run(net, rng);
  EXPECT_TRUE(report.completed);
}

TEST(ProtocolRegistry, TuningReachesTheProtocol) {
  // An absurdly small round budget must be honored by the adapters.
  Tuning tuning;
  tuning.max_rounds = 5;
  const ScenarioFixture fixture("path:128", "none", 0, 1, 4, tuning);
  const ProtocolContext ctx = fixture.context();
  const auto protocol = ProtocolRegistry::global().create("decay", ctx);
  radio::RadioNetwork net(fixture.graph, fixture.scenario.fault, Rng(1));
  Rng rng(2);
  const auto report = protocol->run(net, rng);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.rounds(), 5);
}

}  // namespace
}  // namespace nrn::sim

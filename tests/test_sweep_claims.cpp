// Claim lifecycle hardening: heartbeats keep a slow cell's claim fresh
// under a short TTL (no concurrent recompute), and every exit path of the
// cell executor -- including a protocol throwing mid-compute -- releases
// the claim marker (no leaked `.claim` files wedging later fleets).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nrn_" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

/// Ages a claim marker by `seconds` (as if its owner had not refreshed it
/// for that long).
void age_claim(const ResultCache& cache, const std::string& key,
               double seconds) {
  const auto path = cache.claim_path(key);
  fs::last_write_time(
      path, fs::last_write_time(path) -
                std::chrono::duration_cast<fs::file_time_type::duration>(
                    std::chrono::duration<double>(seconds)));
}

TEST(ClaimHeartbeat, RefreshClaimDefeatsTtlExpiry) {
  const auto dir = scratch_dir("chb_refresh");
  const ResultCache cache(dir);
  const std::string key = "cell-key";
  ASSERT_TRUE(cache.try_claim(key));

  age_claim(cache, key, 3600.0);
  cache.refresh_claim(key);  // the heartbeat's primitive
  EXPECT_FALSE(cache.steal_stale_claim(key, 60.0));  // fresh again

  age_claim(cache, key, 3600.0);
  EXPECT_TRUE(cache.steal_stale_claim(key, 60.0));  // unrefreshed: stealable
  cache.release_claim(key);
  // refresh_claim on a vanished marker is a harmless no-op (stolen claim).
  cache.refresh_claim(key);
}

TEST(ClaimHeartbeat, TickerKeepsClaimFreshWhileHeld) {
  const auto dir = scratch_dir("chb_ticker");
  const ResultCache cache(dir);
  const std::string key = "slow-cell";
  ASSERT_TRUE(cache.try_claim(key));
  {
    ClaimHeartbeat heartbeat(cache, key, 0.02);
    // Watch a "peer" with a 100ms TTL try to steal for ~300ms: the ticker
    // refreshes every 20ms, so the claim never looks stale.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    while (std::chrono::steady_clock::now() < deadline) {
      EXPECT_FALSE(cache.steal_stale_claim(key, 0.1));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  // Ticker stopped: after the TTL the claim is fair game again.
  age_claim(cache, key, 3600.0);
  EXPECT_TRUE(cache.steal_stale_claim(key, 0.1));
}

/// A wrapper protocol that sleeps before delegating, making one cell
/// reliably slower than any realistic short TTL.
class SlowProtocol : public BroadcastProtocol {
 public:
  SlowProtocol(std::unique_ptr<BroadcastProtocol> inner, int sleep_ms)
      : inner_(std::move(inner)), sleep_ms_(sleep_ms) {}

  const std::string& name() const override { return inner_->name(); }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* trace) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    return inner_->run(net, rng, trace);
  }

 private:
  std::unique_ptr<BroadcastProtocol> inner_;
  int sleep_ms_;
};

/// A registry whose "slow-decay" wraps the builtin decay with a delay.
const ProtocolRegistry& slow_registry(int sleep_ms) {
  static ProtocolRegistry registry = [sleep_ms] {
    ProtocolRegistry r;
    register_builtin_protocols(r);
    r.add("slow-decay", "decay with an artificial per-trial delay",
          [sleep_ms](const ProtocolContext& ctx) {
            return std::make_unique<SlowProtocol>(
                ProtocolRegistry::global().create("decay", ctx), sleep_ms);
          });
    return r;
  }();
  return registry;
}

TEST(ClaimHeartbeat, SlowCellUnderShortTtlIsNotRecomputedByPeers) {
  // Two fleet workers, one shared cache, a claim TTL (200ms) far shorter
  // than the slowest cell (~450ms of sleep).  Without heartbeats the idle
  // worker would steal the slow cell and recompute it; with them, every
  // cell is computed exactly once across the fleet.
  const char plan_text[] =
      "topology=path:{8,10,12,14}; protocols=slow-decay; trials=3; seed=5";
  const auto& registry = slow_registry(150);  // 3 trials x 150ms per cell
  const auto dir = scratch_dir("chb_fleet");

  SweepOptions options;
  options.cache_dir = dir;
  options.assignment = SweepAssignment::kFleet;
  options.claim_ttl_seconds = 0.2;
  options.fleet_poll_ms = 10;
  const auto plan = SweepPlan::parse(plan_text);

  std::vector<SweepReport> reports(2);
  std::thread other(
      [&] { reports[1] = SweepRunner(registry).run(plan, options); });
  reports[0] = SweepRunner(registry).run(plan, options);
  other.join();

  for (const auto& report : reports) {
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.fleet.stolen, 0) << "a live claim was stolen";
  }
  const int computed = reports[0].fleet.claimed + reports[1].fleet.claimed;
  EXPECT_EQ(computed, static_cast<int>(plan.cells.size()));
  EXPECT_EQ(reports[0], reports[1]);
}

/// A protocol that always throws, to drive the executor's failure path.
class ThrowingProtocol : public BroadcastProtocol {
 public:
  const std::string& name() const override {
    static const std::string name = "throwing";
    return name;
  }

  Outcome run(radio::RadioNetwork&, Rng&,
              radio::TraceRecorder*) const override {
    throw SpecError("protocol exploded mid-trial");
  }
};

TEST(ClaimRelease, ComputeFailureLeavesNoClaimMarkerBehind) {
  ProtocolRegistry registry;
  register_builtin_protocols(registry);
  registry.add("throwing", "always fails", [](const ProtocolContext&) {
    return std::make_unique<ThrowingProtocol>();
  });

  const auto dir = scratch_dir("chb_throw");
  const ResultCache cache(dir);
  CellExecutor::Options options;
  options.use_claims = true;
  const CellExecutor executor(registry, &cache, options);

  const auto plan =
      SweepPlan::parse("topology=path:8; protocols=throwing; trials=2");
  EXPECT_THROW(executor.resolve(plan.cells[0]), SpecError);

  // The claim was released on the exception path: the directory holds no
  // `.claim` file, and the cell is immediately claimable again.
  for (const auto& entry : fs::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".claim") << entry.path();
  EXPECT_TRUE(cache.try_claim(executor.key(plan.cells[0])));
}

TEST(ClaimRelease, FleetRunWithFailingCellsLeavesClaimFreeDirectory) {
  ProtocolRegistry registry;
  register_builtin_protocols(registry);
  registry.add("throwing", "always fails", [](const ProtocolContext&) {
    return std::make_unique<ThrowingProtocol>();
  });

  const auto dir = scratch_dir("chb_fleet_throw");
  SweepOptions options;
  options.cache_dir = dir;
  options.assignment = SweepAssignment::kFleet;
  options.fleet_poll_ms = 1;
  const auto plan = SweepPlan::parse(
      "topology=path:{8,10}; protocols=decay,throwing; trials=2");
  EXPECT_THROW(SweepRunner(registry).run(plan, options), SpecError);
  for (const auto& entry : fs::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".claim") << entry.path();
}

TEST(CellExecutor, ResolvesThroughCacheClaimAndBusyStates) {
  const auto dir = scratch_dir("chb_exec");
  const ResultCache cache(dir);
  CellExecutor::Options options;
  options.use_claims = true;
  const CellExecutor executor(extended_registry(), &cache, options);
  const auto plan =
      SweepPlan::parse("topology=path:8; protocols=decay; trials=2");
  const auto& cell = plan.cells[0];

  // Cold: computed under a fresh claim.
  const auto first = executor.resolve(cell);
  EXPECT_EQ(first.resolution, CellExecutor::Resolution::kComputed);
  // Warm: loaded.
  const auto second = executor.resolve(cell);
  EXPECT_EQ(second.resolution, CellExecutor::Resolution::kCached);
  EXPECT_EQ(first.experiment, second.experiment);

  // A live foreign claim on an uncached cell reads as busy...
  fs::remove(cache.entry_path(executor.key(cell)));
  ASSERT_TRUE(cache.try_claim(executor.key(cell)));
  const auto busy = executor.resolve(cell);
  EXPECT_EQ(busy.resolution, CellExecutor::Resolution::kBusy);

  // ...until it goes stale, at which point the executor steals it.
  age_claim(cache, executor.key(cell), 3600.0);
  const auto stolen = executor.resolve(cell);
  EXPECT_EQ(stolen.resolution, CellExecutor::Resolution::kStolen);
  EXPECT_EQ(stolen.experiment, first.experiment);
}

}  // namespace
}  // namespace nrn::sim

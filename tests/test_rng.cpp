#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace nrn {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<size_t>(i)]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(17);
  const int n = 50000;
  double total = 0;
  for (int i = 0; i < n; ++i)
    total += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(total / n, 4.0, 0.15);
}

TEST(Rng, GeometricSupportStartsAtOne) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometric(0.9), 1u);
}

TEST(Rng, BinomialBounds) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.binomial(10, 0.5);
    EXPECT_LE(v, 10u);
  }
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, BinomialMean) {
  Rng rng(23);
  const int n = 20000;
  double total = 0;
  for (int i = 0; i < n; ++i)
    total += static_cast<double>(rng.binomial(40, 0.25));
  EXPECT_NEAR(total / n, 10.0, 0.2);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleIsNotIdentityUsually) {
  Rng rng(31);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<size_t>(i)] = i;
  auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Rng, ChoiceUniformish) {
  Rng rng(37);
  std::vector<int> v{0, 1, 2, 3};
  std::map<int, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[rng.choice(v)];
  for (const auto& [value, count] : counts) {
    (void)value;
    EXPECT_NEAR(static_cast<double>(count) / 40000.0, 0.25, 0.02);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99), b(99);
  Rng a0 = a.split(0);
  Rng b0 = b.split(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a0(), b0());

  Rng c(99);
  Rng c1 = c.split(1);
  Rng c2 = c.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (c1() == c2()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownAnswer) {
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace nrn

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace nrn {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<size_t>(i)]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(17);
  const int n = 50000;
  double total = 0;
  for (int i = 0; i < n; ++i)
    total += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(total / n, 4.0, 0.15);
}

TEST(Rng, GeometricSupportStartsAtOne) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometric(0.9), 1u);
}

TEST(Rng, BinomialBounds) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.binomial(10, 0.5);
    EXPECT_LE(v, 10u);
  }
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, BinomialMean) {
  Rng rng(23);
  const int n = 20000;
  double total = 0;
  for (int i = 0; i < n; ++i)
    total += static_cast<double>(rng.binomial(40, 0.25));
  EXPECT_NEAR(total / n, 10.0, 0.2);
}

/// Chi-squared goodness of fit of binomial(n, p) samples against the exact
/// Binomial pmf over buckets [lo, hi] plus two tail buckets.
double binomial_chi_squared(Rng& rng, std::uint64_t n, double p, int samples,
                            std::uint64_t lo, std::uint64_t hi) {
  std::vector<double> observed(static_cast<std::size_t>(hi - lo) + 3, 0.0);
  for (int s = 0; s < samples; ++s) {
    const std::uint64_t x = rng.binomial(n, p);
    std::size_t bucket;
    if (x < lo) bucket = 0;
    else if (x > hi) bucket = observed.size() - 1;
    else bucket = static_cast<std::size_t>(x - lo) + 1;
    observed[bucket] += 1.0;
  }
  // pmf via the same ratio recurrence the sampler inverts, seeded at q^n.
  std::vector<double> pmf(static_cast<std::size_t>(n) + 1, 0.0);
  pmf[0] = std::exp(static_cast<double>(n) * std::log1p(-p));
  for (std::uint64_t x = 0; x < n; ++x)
    pmf[static_cast<std::size_t>(x + 1)] =
        pmf[static_cast<std::size_t>(x)] *
        (static_cast<double>(n - x) / static_cast<double>(x + 1)) *
        (p / (1.0 - p));
  std::vector<double> expected(observed.size(), 0.0);
  for (std::uint64_t x = 0; x <= n; ++x) {
    const double mass = samples * pmf[static_cast<std::size_t>(x)];
    if (x < lo) expected[0] += mass;
    else if (x > hi) expected[expected.size() - 1] += mass;
    else expected[static_cast<std::size_t>(x - lo) + 1] += mass;
  }
  double chi = 0.0;
  for (std::size_t b = 0; b < observed.size(); ++b)
    chi += (observed[b] - expected[b]) * (observed[b] - expected[b]) /
           expected[b];
  return chi;
}

TEST(Rng, BinomialInversionIsBinomialChiSquared) {
  // n = 100 > the direct-simulation cutoff, so this exercises the BINV
  // inversion path.  Buckets 3..18 plus two tails = 17 dof; the 99.9th
  // percentile of chi2(17) is 40.8.
  Rng rng(557);
  EXPECT_LT(binomial_chi_squared(rng, 100, 0.1, 200000, 3, 18), 40.8);
}

TEST(Rng, BinomialReflectedChiSquared) {
  // p > 1/2 reflects to the complement; mean 80, sd 4.  chi2(17) again.
  Rng rng(558);
  EXPECT_LT(binomial_chi_squared(rng, 100, 0.8, 200000, 72, 88), 40.8);
}

TEST(Rng, BinomialSplitPathMatchesMoments) {
  // n log(1-p) < -700 forces the halving split: n = 4096 at p = 0.3 gives
  // n*|log q| ~ 1461.  Mean 1228.8, sd ~29.3; 3000 samples pin the sample
  // mean to +/- 4 sd of the mean estimator comfortably.
  Rng rng(559);
  const int samples = 3000;
  double total = 0.0, total_sq = 0.0;
  for (int s = 0; s < samples; ++s) {
    const auto x = static_cast<double>(rng.binomial(4096, 0.3));
    total += x;
    total_sq += x * x;
  }
  const double mean = total / samples;
  const double var = total_sq / samples - mean * mean;
  EXPECT_NEAR(mean, 4096 * 0.3, 4.0 * 29.3 / std::sqrt(samples));
  EXPECT_NEAR(var, 4096 * 0.3 * 0.7, 0.15 * 4096 * 0.3 * 0.7);
}

TEST(Rng, BinomialSmallNStaysOnDirectPath) {
  // Below the cutoff the documented direct simulation still runs: n coins
  // from the stream, reproducible against a hand-rolled loop.
  Rng sampler(560), oracle(560);
  for (int rep = 0; rep < 200; ++rep) {
    const std::uint64_t got = sampler.binomial(10, 0.3);
    std::uint64_t want = 0;
    for (int i = 0; i < 10; ++i) want += oracle.bernoulli(0.3) ? 1 : 0;
    ASSERT_EQ(got, want) << "rep=" << rep;
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleIsNotIdentityUsually) {
  Rng rng(31);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<size_t>(i)] = i;
  auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Rng, ChoiceUniformish) {
  Rng rng(37);
  std::vector<int> v{0, 1, 2, 3};
  std::map<int, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[rng.choice(v)];
  for (const auto& [value, count] : counts) {
    (void)value;
    EXPECT_NEAR(static_cast<double>(count) / 40000.0, 0.25, 0.02);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99), b(99);
  Rng a0 = a.split(0);
  Rng b0 = b.split(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a0(), b0());

  Rng c(99);
  Rng c1 = c.split(1);
  Rng c2 = c.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (c1() == c2()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownAnswer) {
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

// ------------------------------------------------- v3 skip-sampling paths

TEST(Rng, CoinThresholdEdges) {
  EXPECT_EQ(Rng::coin_threshold(0.0), 0u);
  EXPECT_EQ(Rng::coin_threshold(-1.0), 0u);
  EXPECT_EQ(Rng::coin_threshold(1.0), Rng::kNoSuccess);
  EXPECT_EQ(Rng::coin_threshold(0.5), std::uint64_t{1} << 63);
  // Monotone in p and approximately proportional.
  EXPECT_LT(Rng::coin_threshold(0.25), Rng::coin_threshold(0.26));
  EXPECT_NEAR(static_cast<double>(Rng::coin_threshold(0.3)) * 0x1.0p-64, 0.3,
              1e-12);
}

TEST(Rng, BernoulliSkipEdgesConsumeNothing) {
  Rng rng(41);
  Rng untouched(41);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.bernoulli_skip(0.0), Rng::kNoSuccess);
    EXPECT_EQ(rng.bernoulli_skip(-0.5), Rng::kNoSuccess);
    EXPECT_EQ(rng.bernoulli_skip(1.0), 0u);
    EXPECT_EQ(rng.bernoulli_skip_pow2(0), 0u);
  }
  // The stream did not advance.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng(), untouched());
}

TEST(Rng, BernoulliSkipTapeIsDeterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(a.bernoulli_skip(0.37), b.bernoulli_skip(0.37));
  // Exactly one draw per gap: a raw stream clone stays in lockstep.
  Rng c(7), raw(7);
  for (int i = 0; i < 100; ++i) {
    c.bernoulli_skip(0.37);
    raw();
  }
  EXPECT_EQ(c(), raw());
}

TEST(Rng, DyadicFastPathMatchesGeneralPath) {
  for (const std::int32_t i : {1, 2, 3, 5, 10, 20, 40, 63}) {
    Rng general(1234), dyadic(1234);
    const double p = std::ldexp(1.0, -i);
    for (int draw = 0; draw < 300; ++draw)
      ASSERT_EQ(dyadic.bernoulli_skip_pow2(i), general.bernoulli_skip(p))
          << "i=" << i << " draw=" << draw;
  }
}

TEST(Rng, BernoulliSkipRejectsNegativeExponent) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli_skip_pow2(-1), ContractViolation);
}

/// Chi-squared goodness of fit of observed gap counts against the
/// geometric distribution P(gap = g) = p (1-p)^g, buckets 0..cutoff-1 plus
/// a tail bucket.
double geometric_chi_squared(Rng& rng, double p, int samples, int cutoff,
                             bool dyadic, std::int32_t exponent) {
  std::vector<double> observed(static_cast<std::size_t>(cutoff) + 1, 0.0);
  for (int s = 0; s < samples; ++s) {
    const std::uint64_t gap =
        dyadic ? rng.bernoulli_skip_pow2(exponent) : rng.bernoulli_skip(p);
    const auto bucket = gap >= static_cast<std::uint64_t>(cutoff)
                            ? static_cast<std::size_t>(cutoff)
                            : static_cast<std::size_t>(gap);
    observed[bucket] += 1.0;
  }
  double chi = 0.0, q = 1.0;
  for (int g = 0; g < cutoff; ++g) {
    const double expected = samples * p * q;
    chi += (observed[static_cast<std::size_t>(g)] - expected) *
           (observed[static_cast<std::size_t>(g)] - expected) / expected;
    q *= 1.0 - p;
  }
  const double tail = samples * q;  // P(gap >= cutoff) = (1-p)^cutoff
  chi += (observed[static_cast<std::size_t>(cutoff)] - tail) *
         (observed[static_cast<std::size_t>(cutoff)] - tail) / tail;
  return chi;
}

TEST(Rng, BernoulliSkipIsGeometricChiSquared) {
  // 15 degrees of freedom; the 99.9th percentile of chi2(15) is 37.7.
  Rng rng(555);
  EXPECT_LT(geometric_chi_squared(rng, 0.3, 200000, 15, false, 0), 37.7);
}

TEST(Rng, DyadicSkipIsGeometricChiSquared) {
  // p = 2^-3; 15 dof again.
  Rng rng(556);
  EXPECT_LT(geometric_chi_squared(rng, 0.125, 200000, 15, true, 3), 37.7);
}

TEST(Rng, ForEachBernoulliEdges) {
  Rng rng(60);
  std::vector<std::size_t> hits;
  rng.for_each_bernoulli(100, 1.0, [&](std::size_t i) { hits.push_back(i); });
  ASSERT_EQ(hits.size(), 100u);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i);

  hits.clear();
  rng.for_each_bernoulli(100, 0.0, [&](std::size_t i) { hits.push_back(i); });
  EXPECT_TRUE(hits.empty());
  rng.for_each_bernoulli(0, 0.5, [&](std::size_t i) { hits.push_back(i); });
  EXPECT_TRUE(hits.empty());
}

TEST(Rng, ForEachBernoulliSelectionFrequencyMatchesP) {
  Rng rng(61);
  const double p = 0.2;
  std::int64_t selected = 0;
  const int rounds = 2000, count = 100;
  for (int r = 0; r < rounds; ++r)
    rng.for_each_bernoulli(count, p, [&](std::size_t) { ++selected; });
  EXPECT_NEAR(static_cast<double>(selected) / (rounds * count), p, 0.01);
  // And per-index marginals are uniform: index 0 and index count-1 are
  // selected equally often.
  Rng rng2(62);
  std::int64_t first = 0, last = 0;
  for (int r = 0; r < 20000; ++r)
    rng2.for_each_bernoulli(10, 0.3, [&](std::size_t i) {
      first += i == 0 ? 1 : 0;
      last += i == 9 ? 1 : 0;
    });
  EXPECT_NEAR(static_cast<double>(first) / 20000, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(last) / 20000, 0.3, 0.02);
}

TEST(Rng, ForEachBernoulliPow2BitChunkedRegimeMatchesP) {
  // i <= 2 uses bit-chunked coins (64/i indices per draw); the selection
  // frequency and per-index marginals must still match 2^-i exactly.
  for (const std::int32_t i : {1, 2}) {
    Rng rng(70 + static_cast<std::uint64_t>(i));
    const double p = std::ldexp(1.0, -i);
    std::int64_t selected = 0;
    std::vector<std::int64_t> per_index(100, 0);
    const int rounds = 4000;
    for (int r = 0; r < rounds; ++r)
      rng.for_each_bernoulli_pow2(100, i, [&](std::size_t idx) {
        ++selected;
        ++per_index[idx];
      });
    EXPECT_NEAR(static_cast<double>(selected) / (rounds * 100), p, 0.01);
    // Indices straddling draw boundaries (63/64 for i=1) stay unbiased.
    EXPECT_NEAR(static_cast<double>(per_index[63]) / rounds, p, 0.04);
    EXPECT_NEAR(static_cast<double>(per_index[64 / i]) / rounds, p, 0.04);
  }
}

TEST(Rng, ForEachBernoulliPow2MatchesGeneralTape) {
  Rng a(63), b(63);
  std::vector<std::size_t> via_pow2, via_general;
  for (int r = 0; r < 200; ++r) {
    a.for_each_bernoulli_pow2(64, 4, [&](std::size_t i) {
      via_pow2.push_back(i);
    });
    b.for_each_bernoulli(64, std::ldexp(1.0, -4), [&](std::size_t i) {
      via_general.push_back(i);
    });
  }
  EXPECT_EQ(via_pow2, via_general);
}

TEST(Rng, Mix64BatchMatchesScalarGathered) {
  // The batch mixer must equal mix64 coin by coin for arbitrary gathered
  // indices -- exactness, not statistical agreement.
  Rng meta(2718);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t salt = meta();
    const std::size_t count = 1 + meta.next_below(3 * Rng::kCoinBatch);
    std::vector<std::uint64_t> index(count), out(count);
    for (auto& idx : index) idx = meta();
    Rng::mix64_batch(salt, index.data(), out.data(), count);
    for (std::size_t j = 0; j < count; ++j)
      ASSERT_EQ(out[j], Rng::mix64(salt, index[j]))
          << "trial " << trial << " lane " << j;
  }
}

TEST(Rng, Mix64BatchMatchesScalarConsecutive) {
  Rng meta(3141);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t salt = meta();
    const std::uint64_t first = meta();
    const std::size_t count = 1 + meta.next_below(100);
    std::vector<std::uint64_t> out(count);
    Rng::mix64_batch(salt, first, out.data(), count);
    for (std::size_t j = 0; j < count; ++j)
      ASSERT_EQ(out[j], Rng::mix64(salt, first + j))
          << "trial " << trial << " lane " << j;
  }
}

TEST(Rng, CoinThresholdBatchMatchesScalarCoins) {
  Rng meta(1618);
  for (const double p : {0.0, 0.01, 0.25, 0.5, 0.9, 1.0}) {
    const std::uint64_t threshold = Rng::coin_threshold(p);
    for (int trial = 0; trial < 20; ++trial) {
      const std::uint64_t salt = meta();
      const std::uint64_t first = meta();
      const std::size_t count = 1 + meta.next_below(64);
      const std::uint64_t hits =
          Rng::coin_threshold_batch(salt, first, count, threshold);
      for (std::size_t j = 0; j < count; ++j) {
        const bool scalar = Rng::mix64(salt, first + j) < threshold;
        ASSERT_EQ((hits >> j) & 1u, scalar ? 1u : 0u)
            << "p=" << p << " trial " << trial << " coin " << j;
      }
      // Bits past `count` stay clear: callers iterate set bits directly.
      if (count < 64) {
        EXPECT_EQ(hits >> count, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace nrn

// Generators added beyond the paper's families: hypercube, ring of
// cliques, random regular.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace nrn::graph {
namespace {

TEST(Hypercube, StructureAndDiameter) {
  for (const std::int32_t d : {1, 2, 3, 5, 8}) {
    const Graph g = make_hypercube(d);
    EXPECT_EQ(g.node_count(), NodeId{1} << d);
    for (NodeId u = 0; u < g.node_count(); ++u) EXPECT_EQ(g.degree(u), d);
    EXPECT_EQ(g.edge_count(),
              (static_cast<std::int64_t>(1) << d) * d / 2);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(diameter_exact(g), d);
  }
}

TEST(Hypercube, EdgesFlipExactlyOneBit) {
  const Graph g = make_hypercube(6);
  for (NodeId u = 0; u < g.node_count(); ++u)
    for (const NodeId v : g.neighbors(u)) {
      const auto x = static_cast<std::uint32_t>(u ^ v);
      EXPECT_EQ(x & (x - 1), 0u);  // power of two
      EXPECT_NE(x, 0u);
    }
}

TEST(Hypercube, RejectsBadDimensions) {
  EXPECT_THROW(make_hypercube(0), ContractViolation);
  EXPECT_THROW(make_hypercube(21), ContractViolation);
}

TEST(RingOfCliques, Structure) {
  const Graph g = make_ring_of_cliques(6, 5);
  EXPECT_EQ(g.node_count(), 30);
  EXPECT_TRUE(is_connected(g));
  // Each clique contributes C(5,2)=10 internal edges plus one bridge.
  EXPECT_EQ(g.edge_count(), 6 * 10 + 6);
  // Bridge endpoints have one extra neighbor: member 0 bridges out to the
  // next clique's member 1; member 1 receives the previous clique's bridge.
  EXPECT_EQ(g.degree(0), 4 + 1);
  EXPECT_EQ(g.degree(1), 4 + 1);
  EXPECT_EQ(g.degree(2), 4);
}

TEST(RingOfCliques, DiameterGrowsWithRing) {
  const auto d_small = diameter_exact(make_ring_of_cliques(4, 4));
  const auto d_large = diameter_exact(make_ring_of_cliques(12, 4));
  EXPECT_GT(d_large, d_small);
}

TEST(RingOfCliques, RejectsBadParameters) {
  EXPECT_THROW(make_ring_of_cliques(2, 4), ContractViolation);
  EXPECT_THROW(make_ring_of_cliques(4, 1), ContractViolation);
}

TEST(RandomRegular, DegreesNearTarget) {
  Rng rng(31);
  const Graph g = make_random_regular(100, 4, rng);
  EXPECT_EQ(g.node_count(), 100);
  std::int64_t total_degree = 0;
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_LE(g.degree(u), 4);
    total_degree += g.degree(u);
  }
  // Pairing with retries loses only a few stubs.
  EXPECT_GE(total_degree, 100 * 4 - 12);
}

TEST(RandomRegular, UsuallyConnectedForDegreeThreePlus) {
  Rng rng(33);
  int connected = 0;
  for (int t = 0; t < 10; ++t)
    if (is_connected(make_random_regular(60, 3, rng))) ++connected;
  EXPECT_GE(connected, 8);
}

TEST(RandomRegular, RejectsOddStubTotal) {
  Rng rng(35);
  EXPECT_THROW(make_random_regular(5, 3, rng), ContractViolation);
  EXPECT_THROW(make_random_regular(4, 5, rng), ContractViolation);
}

}  // namespace
}  // namespace nrn::graph

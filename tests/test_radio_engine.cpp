// Semantics of the radio round engine: the exact reception rule of the
// classic model (Section 3.1) and engine bookkeeping.
#include "radio/network.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "radio/trace.hpp"

namespace nrn::radio {
namespace {

using graph::Graph;
using graph::make_complete;
using graph::make_path;
using graph::make_star;

TEST(RadioEngine, SingleBroadcasterDelivers) {
  const Graph g = make_path(3);  // 0 - 1 - 2
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(1, Packet{7});
  const auto& ds = net.run_round();
  ASSERT_EQ(ds.size(), 2u);  // both path neighbors hear it
  for (const auto& d : ds) {
    EXPECT_EQ(d.sender, 1);
    EXPECT_EQ(d.packet.id, 7);
    EXPECT_TRUE(d.receiver == 0 || d.receiver == 2);
  }
}

TEST(RadioEngine, TwoBroadcastingNeighborsCollide) {
  const Graph g = make_star(2);  // hub 0, leaves 1, 2
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(1, Packet{1});
  net.set_broadcast(2, Packet{2});
  const auto& ds = net.run_round();
  EXPECT_TRUE(ds.empty());  // hub hears a collision
  EXPECT_EQ(net.last_round().collision_losses, 1);
}

TEST(RadioEngine, BroadcasterDoesNotReceive) {
  const Graph g = make_path(2);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{1});
  net.set_broadcast(1, Packet{2});
  const auto& ds = net.run_round();
  EXPECT_TRUE(ds.empty());  // both transmitted, neither listened
}

TEST(RadioEngine, NonNeighborsDoNotInterfere) {
  const Graph g = make_path(5);  // 0-1-2-3-4
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{1});
  net.set_broadcast(3, Packet{2});
  const auto& ds = net.run_round();
  // Node 1 hears 0; node 2 hears 3; node 4 hears 3.
  ASSERT_EQ(ds.size(), 3u);
}

TEST(RadioEngine, CollisionAtSharedNeighborOnly) {
  const Graph g = make_path(5);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(1, Packet{1});
  net.set_broadcast(3, Packet{2});
  const auto& ds = net.run_round();
  // Node 2 is adjacent to both: collision.  Nodes 0 and 4 each hear one.
  ASSERT_EQ(ds.size(), 2u);
  for (const auto& d : ds) EXPECT_TRUE(d.receiver == 0 || d.receiver == 4);
  EXPECT_EQ(net.last_round().collision_losses, 1);
}

TEST(RadioEngine, DoubleStagingThrows) {
  const Graph g = make_path(2);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{1});
  EXPECT_THROW(net.set_broadcast(0, Packet{2}), ContractViolation);
}

TEST(RadioEngine, SilentRoundAdvancesClock) {
  const Graph g = make_path(2);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  EXPECT_EQ(net.round_number(), 0);
  net.run_silent_round();
  EXPECT_EQ(net.round_number(), 1);
  EXPECT_EQ(net.last_round().broadcasters, 0);
}

TEST(RadioEngine, TotalsAccumulate) {
  const Graph g = make_path(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  for (int i = 0; i < 5; ++i) {
    net.set_broadcast(0, Packet{i});
    net.run_round();
  }
  EXPECT_EQ(net.totals().rounds, 5);
  EXPECT_EQ(net.totals().broadcasts, 5);
  EXPECT_EQ(net.totals().deliveries, 5);  // node 1 hears each time
}

TEST(RadioEngine, DeterministicGivenSeed) {
  const Graph g = make_star(50);
  auto run = [&g](std::uint64_t seed) {
    RadioNetwork net(g, FaultModel::receiver(0.5), Rng(seed));
    std::vector<std::int64_t> counts;
    for (int r = 0; r < 50; ++r) {
      net.set_broadcast(0, Packet{r});
      counts.push_back(
          static_cast<std::int64_t>(net.run_round().size()));
    }
    return counts;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RadioEngine, PayloadSharedAcrossDeliveries) {
  const Graph g = make_star(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  auto payload = make_payload({1, 2, 3});
  net.set_broadcast(0, Packet{9, payload});
  const auto& ds = net.run_round();
  ASSERT_EQ(ds.size(), 3u);
  for (const auto& d : ds) EXPECT_EQ(d.packet.payload.get(), payload.get());
}

TEST(RadioEngine, CompleteGraphSingleSpeakerReachesAll) {
  const Graph g = make_complete(8);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{0});
  EXPECT_EQ(net.run_round().size(), 7u);
}

TEST(RadioEngine, CompleteGraphTwoSpeakersSilenceEveryone) {
  const Graph g = make_complete(8);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{0});
  net.set_broadcast(1, Packet{1});
  EXPECT_TRUE(net.run_round().empty());
  EXPECT_EQ(net.last_round().collision_losses, 6);
}

TEST(Trace, RecordsAndAccumulates) {
  const Graph g = make_path(4);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  TraceRecorder trace;
  for (int r = 0; r < 3; ++r) {
    net.set_broadcast(0, Packet{r});
    net.run_round();
    trace.record(net.last_round(), static_cast<double>(r + 1));
  }
  EXPECT_EQ(trace.round_count(), 3u);
  EXPECT_EQ(trace.accumulate().deliveries, 3);
  EXPECT_EQ(trace.productive_rounds(), 3u);
  EXPECT_EQ(trace.rounds_until_progress_at_least(2.0), 1);
  EXPECT_EQ(trace.rounds_until_progress_at_least(99.0), -1);
}

}  // namespace
}  // namespace nrn::radio

// SweepRunner: shard invariance (the issue's headline property), result
// cache correctness, serialization round trips, and merge strictness.
#include "sim/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

namespace fs = std::filesystem;

using testutil::shard_bytes;
using testutil::sweep_csv_of;
using testutil::sweep_json_of;

SweepReport run_plan(const std::string& plan_text,
                     const SweepOptions& options = {}) {
  const auto plan = SweepPlan::parse(plan_text);
  return SweepRunner(extended_registry()).run(plan, options);
}

/// A scratch directory unique to the running test, wiped up front.
std::string scratch_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nrn_" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// Mixed plan: deterministic and randomized topologies, two protocols, a
// fault axis -- enough structure for partition bugs to show up.
const char kPlanA[] =
    "topology=path:{8,12},gnp:16:0.3; fault=none,receiver:0.3; "
    "protocols=decay,greedy; trials=3; seed=21";
const char kPlanB[] =
    "topology=grid:3x4; fault=combined:0.1:0.1; "
    "protocols=decay,robust,fastbc; k={1..3}; trials=2; seed=5";

TEST(SweepRunner, ShardPartitionsMergeBitIdentically) {
  for (const std::string plan : {kPlanA, kPlanB}) {
    SCOPED_TRACE(plan);
    const auto serial = run_plan(plan);
    ASSERT_TRUE(serial.complete());
    for (const int shard_count : {2, 3, 4}) {
      SCOPED_TRACE(shard_count);
      std::vector<SweepReport> shards;
      std::size_t cells_seen = 0;
      for (int shard = 0; shard < shard_count; ++shard) {
        SweepOptions options;
        options.shard_index = shard;
        options.shard_count = shard_count;
        shards.push_back(run_plan(plan, options));
        EXPECT_FALSE(shards.back().complete());
        cells_seen += shards.back().cells.size();
      }
      EXPECT_EQ(cells_seen, serial.cells.size());  // disjoint and exhaustive
      const auto merged = merge_sweep_reports(shards);
      EXPECT_EQ(merged, serial);
      // Bit-identical across every serialization, not just operator==.
      EXPECT_EQ(shard_bytes(merged), shard_bytes(serial));
      EXPECT_EQ(sweep_csv_of(merged), sweep_csv_of(serial));
      EXPECT_EQ(sweep_json_of(merged), sweep_json_of(serial));
    }
  }
}

TEST(SweepRunner, CellThreadingDoesNotChangeResults) {
  const auto serial = run_plan(kPlanA);
  SweepOptions options;
  options.cell_threads = 4;
  EXPECT_EQ(run_plan(kPlanA, options), serial);
  options.trial_threads = 2;
  EXPECT_EQ(run_plan(kPlanA, options), serial);
}

TEST(SweepRunner, ShardedRunsSkipForeignCells) {
  SweepOptions options;
  options.shard_index = 1;
  options.shard_count = 3;
  const auto shard = run_plan(kPlanA, options);
  ASSERT_FALSE(shard.cells.empty());
  for (const auto& cell : shard.cells) EXPECT_EQ(cell.cell_index % 3, 1);
}

TEST(SweepRunner, UnknownProtocolFailsBeforeRunning) {
  EXPECT_THROW(run_plan("topology=path:8; protocols=decay,nope"), SpecError);
}

TEST(SweepRunner, ScheduleProtocolsRunThroughSweeps) {
  const auto link = run_plan(
      "topology=link; fault=receiver:0.5; k=32; trials=2; seed=4; "
      "protocols=link-nonadaptive,link-adaptive,link-coding");
  EXPECT_EQ(link.cells.size(), 3u);
  EXPECT_TRUE(link.all_completed());

  const auto transforms = run_plan(
      "topology=star:8,path:8; fault=sender:0.2; k=4; trials=2; seed=3; "
      "protocols=transform-routing,transform-coding");
  EXPECT_EQ(transforms.cells.size(), 4u);
  for (const auto& cell : transforms.cells)
    EXPECT_GT(cell.experiment.trials.front().run.messages(), 1);

  // Topology-constrained protocols reject scenarios they cannot schedule.
  EXPECT_THROW(run_plan("topology=path:8; protocols=link-adaptive"),
               SpecError);
  EXPECT_THROW(run_plan("topology=grid:3x3; protocols=transform-coding"),
               SpecError);
}

TEST(ExperimentRecord, RoundTripsExactly) {
  const auto report = run_plan(kPlanB);
  for (const auto& cell : report.cells) {
    const auto text = experiment_record(cell.experiment);
    EXPECT_EQ(parse_experiment_record(text), cell.experiment);
  }
  EXPECT_THROW(parse_experiment_record("experiment v2\n"), SpecError);
  EXPECT_THROW(parse_experiment_record(""), SpecError);
}

TEST(ShardFile, RoundTripsAndRejectsDamage) {
  const auto report = run_plan(kPlanA);
  const auto bytes = shard_bytes(report);

  std::istringstream in(bytes);
  EXPECT_EQ(read_shard_file(in), report);

  // Truncation, bit flips, and checksum removal all fail loudly.
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(read_shard_file(truncated), SpecError);
  std::string flipped = bytes;
  flipped[bytes.size() / 3] ^= 0x1;
  std::istringstream corrupt(flipped);
  EXPECT_THROW(read_shard_file(corrupt), SpecError);
  std::istringstream empty("");
  EXPECT_THROW(read_shard_file(empty), SpecError);
}

TEST(MergeSweepReports, RejectsGapsForeignShardsAndDivergentDuplicates) {
  const auto serial = run_plan(kPlanA);
  SweepOptions s0, s1;
  s0.shard_count = s1.shard_count = 2;
  s0.shard_index = 0;
  s1.shard_index = 1;
  const auto shard0 = run_plan(kPlanA, s0);
  const auto shard1 = run_plan(kPlanA, s1);

  EXPECT_THROW(merge_sweep_reports({}), SpecError);
  EXPECT_THROW(merge_sweep_reports({shard0}), SpecError);           // gap
  EXPECT_THROW(merge_sweep_reports({shard0, shard0}), SpecError);   // still gap
  const auto other = run_plan(kPlanB);
  EXPECT_THROW(merge_sweep_reports({shard0, other}), SpecError);    // foreign
  EXPECT_EQ(merge_sweep_reports({shard1, shard0}), serial);  // order-free

  // Fleet shards overlap: bit-identical duplicates merge cleanly...
  EXPECT_EQ(merge_sweep_reports({shard0, shard1, shard1}), serial);
  EXPECT_EQ(merge_sweep_reports({serial, serial}), serial);
  // ...but a duplicate whose payload diverges is corruption, not overlap.
  auto tampered = shard1;
  tampered.cells.front().experiment.depth += 1;
  EXPECT_THROW(merge_sweep_reports({serial, tampered}), SpecError);
}

TEST(ResultCache, WarmRunsReproduceColdRunsExactly) {
  const auto dir = scratch_dir("cache_warm");
  SweepOptions options;
  options.cache_dir = dir;
  const auto cold = run_plan(kPlanA, options);
  EXPECT_EQ(cold.cache_hits(), 0);

  const auto warm = run_plan(kPlanA, options);
  EXPECT_EQ(warm.cache_hits(), static_cast<int>(warm.cells.size()));
  EXPECT_EQ(warm, cold);  // from_cache is provenance, not payload
  EXPECT_EQ(shard_bytes(warm), shard_bytes(cold));
  EXPECT_EQ(sweep_csv_of(warm), sweep_csv_of(cold));
  EXPECT_EQ(run_plan(kPlanA), cold);  // and both match the uncached run
}

TEST(ResultCache, DamagedEntriesAreRecomputedNotTrusted) {
  const auto dir = scratch_dir("cache_damage");
  SweepOptions options;
  options.cache_dir = dir;
  const auto cold = run_plan(kPlanB, options);

  const auto plan = SweepPlan::parse(kPlanB);
  const ResultCache cache(dir);
  const auto path0 = cache.entry_path(sweep_cache_key(plan.cells[0], {}));
  const auto path1 = cache.entry_path(sweep_cache_key(plan.cells[1], {}));
  const auto path2 = cache.entry_path(sweep_cache_key(plan.cells[2], {}));
  ASSERT_TRUE(fs::exists(path0));

  // Truncate one entry, flip a byte in another (keeping the length), and
  // swap a third for a checksum-valid entry under the wrong key.
  write_file(path0, read_file(path0).substr(0, 30));
  auto bytes = read_file(path1);
  bytes[bytes.size() / 2] ^= 0x4;
  write_file(path1, bytes);
  write_file(path2, read_file(cache.entry_path(
                        sweep_cache_key(plan.cells[3], {}))));

  const auto healed = run_plan(kPlanB, options);
  EXPECT_EQ(healed, cold);
  EXPECT_EQ(healed.cache_hits(), static_cast<int>(healed.cells.size()) - 3);
  // The damaged entries were rewritten; a further run hits everywhere.
  EXPECT_EQ(run_plan(kPlanB, options).cache_hits(),
            static_cast<int>(cold.cells.size()));
}

TEST(ResultCache, KeysSeparateSpecProtocolTuningAndSeed) {
  const auto plan = SweepPlan::parse(
      "topology=path:8; fault=receiver:0.2; protocols=decay; trials=2; "
      "seed=4");
  const auto& cell = plan.cells.at(0);
  const std::string base = sweep_cache_key(cell, {});

  auto cell_with = [&](const char* text) {
    return SweepPlan::parse(text).cells.at(0);
  };
  // Scenario spec changes the key...
  EXPECT_NE(sweep_cache_key(
                cell_with("topology=path:9; fault=receiver:0.2; "
                          "protocols=decay; trials=2; seed=4"),
                {}),
            base);
  EXPECT_NE(sweep_cache_key(
                cell_with("topology=path:8; fault=receiver:0.3; "
                          "protocols=decay; trials=2; seed=4"),
                {}),
            base);
  // ...as do protocol, trial count, and the master seed...
  EXPECT_NE(sweep_cache_key(
                cell_with("topology=path:8; fault=receiver:0.2; "
                          "protocols=robust; trials=2; seed=4"),
                {}),
            base);
  EXPECT_NE(sweep_cache_key(
                cell_with("topology=path:8; fault=receiver:0.2; "
                          "protocols=decay; trials=3; seed=4"),
                {}),
            base);
  EXPECT_NE(sweep_cache_key(
                cell_with("topology=path:8; fault=receiver:0.2; "
                          "protocols=decay; trials=2; seed=5"),
                {}),
            base);
  // ...and so does tuning, every field of it.
  Tuning tuned;
  tuned.max_rounds = 64;
  EXPECT_NE(sweep_cache_key(cell, tuned), base);
  Tuning payload;
  payload.payload_len = 64;
  EXPECT_NE(sweep_cache_key(cell, payload), base);
  // While an identical plan reproduces the identical key.
  EXPECT_EQ(sweep_cache_key(
                cell_with("topology=path:8; fault=receiver:0.2; "
                          "protocols=decay; trials=2; seed=4"),
                {}),
            base);
}

TEST(ResultCache, ConcurrentWritersOfOneCellNeverCorruptTheEntry) {
  // Regression for the cross-process tmp-file race: store() used to build
  // its temp path from the cell index, so two workers writing the same
  // cell interleaved in ONE temp file and renamed garbage into place --
  // an entry that failed verification (and recomputed) forever after.
  // With per-writer unique temp names, a reader must see either a miss or
  // a fully verified entry at every instant, and the final entry loads.
  const auto dir = scratch_dir("cache_race");
  const ResultCache cache(dir);
  const auto plan = SweepPlan::parse(
      "topology=path:8; protocols=decay; trials=2; seed=11");
  const std::string key = sweep_cache_key(plan.cells.at(0), {});
  const auto report =
      Driver(extended_registry())
          .run(plan.cells[0].scenario, plan.cells[0].protocol,
               plan.cells[0].trials);

  constexpr int kWriters = 4;
  constexpr int kStoresPerWriter = 50;
  std::atomic<int> verified_loads{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&] {
      for (int i = 0; i < kStoresPerWriter; ++i) cache.store(key, report);
    });
  threads.emplace_back([&] {  // concurrent reader
    while (!stop.load(std::memory_order_relaxed)) {
      if (const auto loaded = cache.load(key)) {
        EXPECT_EQ(*loaded, report);
        verified_loads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true);
  threads.back().join();

  EXPECT_GT(verified_loads.load(), 0);  // the reader raced real stores
  const auto final_load = cache.load(key);
  ASSERT_TRUE(final_load.has_value());
  EXPECT_EQ(*final_load, report);
  // No temp litter: every store either renamed or removed its temp file.
  for (const auto& entry : fs::directory_iterator(dir))
    EXPECT_EQ(entry.path().extension(), ".nrnc") << entry.path();
}

TEST(ResultCache, CachedCellsSkipRecomputation) {
  // A cache hit must not rerun trials: warm a cache, then run the same
  // plan with a tiny round budget that would otherwise change results.
  const auto dir = scratch_dir("cache_skip");
  SweepOptions options;
  options.cache_dir = dir;
  options.tuning.max_rounds = 5000;
  const auto cold = run_plan(kPlanB, options);
  ASSERT_TRUE(cold.all_completed());
  const auto warm = run_plan(kPlanB, options);
  EXPECT_EQ(warm.cache_hits(), static_cast<int>(warm.cells.size()));
  EXPECT_TRUE(warm.all_completed());
}

}  // namespace
}  // namespace nrn::sim

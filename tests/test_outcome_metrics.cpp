// Protocol v2 Outcome metrics: exact MetricValue round trips, the
// informed-sentinel fix (absent, never -1), per-experiment aggregation
// (mean/min/max), capability exposure through registry and reports,
// verified-payload runs, theory-bound gap columns, and the shard-invariance
// property extended to metric columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

using testutil::sweep_csv_of;
using testutil::sweep_json_of;

TEST(MetricValue, SerializationRoundTripsExactly) {
  const MetricValue ints[] = {std::int64_t{0}, std::int64_t{-7},
                              std::int64_t{1} << 62};
  for (const auto& v : ints) {
    const auto back = MetricValue::parse(v.serialize());
    ASSERT_TRUE(back.has_value()) << v.serialize();
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(back->is_int());
  }
  // Reals round-trip bit-exactly through the hexfloat form, including
  // values that decimal printing would round.
  const MetricValue reals[] = {0.1, -3.25, 1.0 / 3.0, 6.02e23};
  for (const auto& v : reals) {
    const auto back = MetricValue::parse(v.serialize());
    ASSERT_TRUE(back.has_value()) << v.serialize();
    EXPECT_EQ(*back, v);
    EXPECT_FALSE(back->is_int());
  }
  EXPECT_FALSE(MetricValue::parse("").has_value());
  EXPECT_FALSE(MetricValue::parse("x1").has_value());
  EXPECT_FALSE(MetricValue::parse("i12junk").has_value());
  EXPECT_FALSE(MetricValue::parse("rnope").has_value());
  // Overflowing numerals are malformed, not clamped.
  EXPECT_FALSE(MetricValue::parse("i99999999999999999999999").has_value());
  EXPECT_FALSE(MetricValue::parse("r1e99999").has_value());
}

TEST(MetricValue, KeysAreValidated) {
  EXPECT_TRUE(valid_metric_key("verified_bytes"));
  EXPECT_TRUE(valid_metric_key("rounds"));
  EXPECT_FALSE(valid_metric_key(""));
  EXPECT_FALSE(valid_metric_key("has space"));
  EXPECT_FALSE(valid_metric_key("Upper"));
  EXPECT_FALSE(valid_metric_key("key=value"));
  Outcome out;
  EXPECT_THROW(out.set("bad key", 1), ContractViolation);
}

TEST(Outcome, MultiMessageRunsOmitInformedInsteadOfSentinel) {
  core::MultiRunResult multi;
  multi.completed = true;
  multi.rounds = 10;
  multi.messages = 4;
  const Outcome out = Outcome::from(multi);
  EXPECT_EQ(out.find("informed"), nullptr);  // absent, not -1
  EXPECT_EQ(out.rounds(), 10);
  EXPECT_EQ(out.messages(), 4);
  EXPECT_DOUBLE_EQ(out.rounds_per_message(), 2.5);

  core::BroadcastRunResult single;
  single.completed = true;
  single.rounds = 7;
  single.informed = 12;
  const Outcome solo = Outcome::from(single);
  ASSERT_NE(solo.find("informed"), nullptr);
  EXPECT_EQ(solo.find("informed")->as_int(), 12);
  EXPECT_EQ(solo.messages(), 1);  // implicit for single-message runs
}

TEST(Outcome, SentinelNeverReachesEmitters) {
  // A multi-message protocol's report must not contain "-1" in the
  // informed position anywhere (v1 emitted it into CSV and JSON).
  const auto scenario = Scenario::parse("path:12", "none", 0, 3, 7);
  const auto report = Driver().run(scenario, "rlnc-decay", 2);
  EXPECT_TRUE(report.metric_values("informed").empty());
  const auto json = testutil::json_of(report);
  EXPECT_EQ(json.find("informed"), std::string::npos);
  EXPECT_EQ(json.find("-1"), std::string::npos);
}

TEST(ExperimentReport, MetricAggregationAcrossTrials) {
  const auto scenario = Scenario::parse("grid:6x6", "receiver:0.2", 0, 1, 11);
  const auto report = Driver().run(scenario, "decay", 5);

  // decay reports informed for every trial; the grid completes, so every
  // trial informs all 36 nodes.
  const auto keys = report.metric_keys();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "informed"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "rounds"), keys.end());

  const auto informed = report.metric_summary("informed");
  EXPECT_EQ(informed.count, 5);
  EXPECT_DOUBLE_EQ(informed.mean, 36.0);
  EXPECT_DOUBLE_EQ(informed.min, 36.0);
  EXPECT_DOUBLE_EQ(informed.max, 36.0);

  // rounds varies across trials: mean lies within [min, max] and matches
  // the report's own mean_rounds.
  const auto rounds = report.metric_summary("rounds");
  EXPECT_EQ(rounds.count, 5);
  EXPECT_LE(rounds.min, rounds.mean);
  EXPECT_LE(rounds.mean, rounds.max);
  EXPECT_DOUBLE_EQ(rounds.mean, report.mean_rounds());

  // An unknown key aggregates to the empty summary.
  EXPECT_EQ(report.metric_summary("nope").count, 0);
}

TEST(Registry, CapabilitiesAreExposedPerProtocol) {
  const auto& registry = extended_registry();
  EXPECT_EQ(registry.capabilities("decay"), kTraced | kSinrCapable);
  EXPECT_EQ(registry.capabilities("rlnc-decay"),
            kMultiMessage | kSinrCapable);
  EXPECT_EQ(registry.capabilities("erasure-decay"),
            kMultiMessage | kVerifiedPayload | kSinrCapable);
  EXPECT_EQ(registry.capabilities("star-coding"),
            kMultiMessage | kScheduleGap);
  EXPECT_TRUE(registry.has_capability("rlnc-robust-verified",
                                      kVerifiedPayload));
  EXPECT_FALSE(registry.has_capability("greedy", kVerifiedPayload));
  EXPECT_THROW(registry.capabilities("nope"), SpecError);

  EXPECT_EQ(capability_names(0), "-");
  EXPECT_EQ(capability_names(kMultiMessage | kScheduleGap),
            "multi-message+schedule-gap");
  EXPECT_EQ(capability_names(kTraced | kSinrCapable), "traced+sinr-capable");
  // The schedule protocols stay edge-fault only: their gap accounting has
  // no SINR analogue.
  EXPECT_FALSE(registry.has_capability("star-coding", kSinrCapable));
}

TEST(Driver, ReportsCarryCapabilitiesDepthAndTheoryBound) {
  const auto scenario = Scenario::parse("path:16", "receiver:0.2", 0, 1, 3);
  const auto report = Driver().run(scenario, "decay", 2);
  EXPECT_EQ(report.capabilities, kTraced | kSinrCapable);
  EXPECT_EQ(report.depth, 15);  // path eccentricity from node 0
  ASSERT_TRUE(report.has_theory_bound());
  // Lemma 9 form: (D + log2 n) (log2 n) / (1 - p).
  EXPECT_NEAR(report.theory_bound, (15.0 + 4.0) * 4.0 / 0.8, 1e-9);
  EXPECT_GT(report.gap(), 0.0);
  EXPECT_NEAR(report.gap(), report.median_rounds() / report.theory_bound,
              1e-12);
}

TEST(Driver, VerifiedPayloadProtocolsCertifyBytes) {
  const auto scenario = Scenario::parse("path:10", "receiver:0.2", 0, 4, 9);
  for (const char* protocol :
       {"rlnc-decay-verified", "rlnc-robust-verified", "erasure-decay"}) {
    SCOPED_TRACE(protocol);
    const auto report = Driver().run(scenario, protocol, 2);
    EXPECT_TRUE(report.all_completed());
    EXPECT_NE(report.capabilities & kVerifiedPayload, 0u);
    for (const auto& trial : report.trials) {
      const MetricValue* bytes = trial.run.find("verified_bytes");
      ASSERT_NE(bytes, nullptr);
      // 10 nodes x 4 messages x 16 default payload bytes.
      EXPECT_EQ(bytes->as_int(), 10 * 4 * 16);
    }
    // payload_len tuning changes the certified volume.
    DriverOptions options;
    options.tuning.payload_len = 8;
    const auto tuned = Driver().run(scenario, protocol, 1, options);
    EXPECT_TRUE(tuned.all_completed());
    EXPECT_EQ(tuned.trials.front().run.find("verified_bytes")->as_int(),
              10 * 4 * 8);
  }
}

TEST(Driver, ScheduleGapProtocolsEmitObservables) {
  const auto scenario =
      Scenario::parse("wct:16:2:6:2", "receiver:0.3", 0, 4, 21);
  const Driver driver(extended_registry());
  const auto probe = driver.run(scenario, "wct-unique-probe", 3);
  EXPECT_TRUE(probe.all_completed());
  const auto fraction = probe.metric_summary("unique_fraction");
  EXPECT_EQ(fraction.count, 3);
  EXPECT_GT(fraction.mean, 0.0);
  EXPECT_LE(fraction.max, 1.0);
  const auto scaled = probe.metric_summary("unique_fraction_x_classes");
  EXPECT_NEAR(scaled.mean, fraction.mean * 2.0, 1e-12);

  const auto coding = driver.run(scenario, "wct-coding", 2);
  EXPECT_TRUE(coding.all_completed());
  EXPECT_NE(coding.capabilities & kScheduleGap, 0u);
  EXPECT_TRUE(coding.has_theory_bound());
}

TEST(SweepRunner, ShardInvarianceCoversMetricColumns) {
  // A plan whose protocols emit heterogeneous metrics (informed,
  // verified_bytes, unique observables): the sharded merge must reproduce
  // the serial emitters byte for byte, metric columns included.
  const std::string plan_text =
      "topology=path:10; fault=receiver:0.2; k=4; "
      "protocols=decay,rlnc-decay,erasure-decay,rlnc-decay-verified; "
      "trials=2; seed=31";
  const auto plan = SweepPlan::parse(plan_text);
  const SweepRunner runner(extended_registry());
  const auto serial = runner.run(plan);
  ASSERT_TRUE(serial.complete());

  const auto csv = sweep_csv_of(serial);
  EXPECT_NE(csv.find("theory_bound,gap"), std::string::npos);
  EXPECT_NE(csv.find("mean_informed"), std::string::npos);
  EXPECT_NE(csv.find("mean_verified_bytes"), std::string::npos);

  std::vector<SweepReport> shards;
  for (int shard = 0; shard < 3; ++shard) {
    SweepOptions options;
    options.shard_index = shard;
    options.shard_count = 3;
    shards.push_back(runner.run(plan, options));
  }
  const auto merged = merge_sweep_reports(shards);
  EXPECT_EQ(merged, serial);
  EXPECT_EQ(sweep_csv_of(merged), csv);
  EXPECT_EQ(sweep_json_of(merged), sweep_json_of(serial));
  EXPECT_EQ(testutil::shard_bytes(merged), testutil::shard_bytes(serial));

  // And the record round trip preserves every metric exactly.
  for (const auto& cell : serial.cells)
    EXPECT_EQ(parse_experiment_record(experiment_record(cell.experiment)),
              cell.experiment);
}

TEST(SweepRunner, MetricsSurviveTheResultCache) {
  const std::string dir =
      (std::string(::testing::TempDir()) + "/nrn_metric_cache");
  std::filesystem::remove_all(dir);
  const auto plan = SweepPlan::parse(
      "topology=path:8; fault=receiver:0.2; k=3; "
      "protocols=erasure-decay; trials=2; seed=13");
  const SweepRunner runner(extended_registry());
  SweepOptions options;
  options.cache_dir = dir;
  const auto cold = runner.run(plan, options);
  const auto warm = runner.run(plan, options);
  EXPECT_EQ(warm.cache_hits(), 1);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(sweep_csv_of(warm), sweep_csv_of(cold));
  ASSERT_FALSE(warm.cells.empty());
  EXPECT_NE(warm.cells.front().experiment.trials.front().run.find(
                "verified_bytes"),
            nullptr);
}

}  // namespace
}  // namespace nrn::sim

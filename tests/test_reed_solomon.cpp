// Reed-Solomon: the any-k-of-m reconstruction contract the paper's coding
// schedules rely on (Section 5, footnote 1).
#include "coding/reed_solomon.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nrn::coding {
namespace {

std::vector<std::vector<Gf65536::Symbol>> random_messages(std::size_t k,
                                                          std::size_t len,
                                                          Rng& rng) {
  std::vector<std::vector<Gf65536::Symbol>> msgs(
      k, std::vector<Gf65536::Symbol>(len));
  for (auto& m : msgs)
    for (auto& s : m) s = static_cast<Gf65536::Symbol>(rng.next_below(65536));
  return msgs;
}

TEST(ReedSolomon, RoundTripFirstK) {
  Rng rng(1);
  ReedSolomon rs(8, 4);
  const auto msgs = random_messages(8, 4, rng);
  const auto packets = rs.encode(msgs, 8);
  EXPECT_EQ(rs.decode(packets), msgs);
}

TEST(ReedSolomon, AnyKOfM) {
  Rng rng(2);
  ReedSolomon rs(6, 3);
  const auto msgs = random_messages(6, 3, rng);
  auto packets = rs.encode(msgs, 24);
  for (int trial = 0; trial < 20; ++trial) {
    rng.shuffle(packets);
    std::vector<RsPacket> subset(packets.begin(), packets.begin() + 6);
    EXPECT_EQ(rs.decode(subset), msgs);
  }
}

TEST(ReedSolomon, ExtraPacketsAreIgnored) {
  Rng rng(3);
  ReedSolomon rs(4, 2);
  const auto msgs = random_messages(4, 2, rng);
  const auto packets = rs.encode(msgs, 10);
  EXPECT_EQ(rs.decode(packets), msgs);  // 10 > k packets supplied
}

TEST(ReedSolomon, DuplicateIndicesDoNotCount) {
  Rng rng(4);
  ReedSolomon rs(3, 2);
  const auto msgs = random_messages(3, 2, rng);
  const auto packets = rs.encode(msgs, 3);
  std::vector<RsPacket> dup{packets[0], packets[0], packets[1]};
  EXPECT_THROW(rs.decode(dup), ContractViolation);
}

TEST(ReedSolomon, TooFewPacketsThrow) {
  Rng rng(5);
  ReedSolomon rs(5, 2);
  const auto msgs = random_messages(5, 2, rng);
  const auto packets = rs.encode(msgs, 4);
  EXPECT_THROW(rs.decode(packets), ContractViolation);
}

TEST(ReedSolomon, SystematicLikeConsistency) {
  // Packet 0 evaluates at alpha^0 = 1: it equals the XOR-free polynomial
  // evaluation sum_i m_i -- check against a direct computation.
  Rng rng(6);
  ReedSolomon rs(4, 3);
  const auto msgs = random_messages(4, 3, rng);
  const auto pkt = rs.encode_packet(msgs, 0);
  const auto& f = Gf65536::instance();
  for (std::size_t s = 0; s < 3; ++s) {
    Gf65536::Symbol expect = 0;
    for (std::size_t i = 0; i < 4; ++i) expect = f.add(expect, msgs[i][s]);
    EXPECT_EQ(pkt.symbols[s], expect);
  }
}

TEST(ReedSolomon, SingleMessageDegenerateCase) {
  Rng rng(7);
  ReedSolomon rs(1, 5);
  const auto msgs = random_messages(1, 5, rng);
  const auto packets = rs.encode(msgs, 7);
  // Every packet of a k=1 code is the message itself.
  for (const auto& p : packets) EXPECT_EQ(p.symbols, msgs[0]);
  EXPECT_EQ(rs.decode({packets[5]}), msgs);
}

class RsParamSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RsParamSweep, DecodeFromRandomSubsets) {
  const auto [k, overhead] = GetParam();
  Rng rng(100 + k * 7 + overhead);
  ReedSolomon rs(k, 2);
  const auto msgs = random_messages(k, 2, rng);
  auto packets = rs.encode(msgs, static_cast<std::uint32_t>(k + overhead));
  rng.shuffle(packets);
  std::vector<RsPacket> subset(packets.begin(),
                               packets.begin() + static_cast<long>(k));
  EXPECT_EQ(rs.decode(subset), msgs);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RsParamSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 16, 32, 64),
                       ::testing::Values<std::size_t>(1, 8, 64)));

TEST(ReedSolomon, LargePacketIndices) {
  Rng rng(8);
  ReedSolomon rs(4, 2);
  const auto msgs = random_messages(4, 2, rng);
  std::vector<RsPacket> packets;
  for (std::uint32_t idx : {60000u, 60001u, 65000u, 65534u})
    packets.push_back(rs.encode_packet(msgs, idx));
  EXPECT_EQ(rs.decode(packets), msgs);
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 1), ContractViolation);
  EXPECT_THROW(ReedSolomon(1, 0), ContractViolation);
  Rng rng(9);
  ReedSolomon rs(2, 1);
  const auto msgs = random_messages(2, 1, rng);
  EXPECT_THROW(rs.encode_packet(msgs, ReedSolomon::max_packets()),
               ContractViolation);
  EXPECT_THROW(rs.encode_packet(random_messages(3, 1, rng), 0),
               ContractViolation);
}

}  // namespace
}  // namespace nrn::coding

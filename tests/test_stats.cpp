#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace nrn {
namespace {

TEST(Stats, SummaryBasics) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarySingleton) {
  const auto s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryEmptyThrows) {
  EXPECT_THROW(summarize({}), ContractViolation);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.25), 1.75);
}

TEST(Stats, MeanThrowsOnEmpty) {
  EXPECT_THROW(mean({}), ContractViolation);
}

TEST(Stats, OnlineMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-3, 9);
    xs.push_back(x);
    online.add(x);
  }
  const auto batch = summarize(xs);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(online.stddev(), batch.stddev, 1e-9);
  EXPECT_EQ(online.count(), 1000u);
}

TEST(Stats, OnlineVarianceFewPoints) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, LinearFitExact) {
  const auto fit = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 1 + 2x
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisy) {
  Rng rng(17);
  std::vector<double> x, y;
  for (int i = 0; i < 400; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 3 + rng.uniform_real(-1, 1));
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, 3.0, 2.0);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Stats, LinearFitRejectsConstantX) {
  EXPECT_THROW(fit_linear({2, 2, 2}, {1, 2, 3}), ContractViolation);
}

TEST(Stats, PowerLawFitRecoversExponent) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(4.0 * std::pow(i, 1.5));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 4.0, 1e-6);
}

TEST(Stats, LogLinearFitRecoversSlope) {
  // y = 3 + 2 log2(x)
  std::vector<double> x, y;
  for (int e = 1; e <= 12; ++e) {
    x.push_back(std::pow(2.0, e));
    y.push_back(3.0 + 2.0 * e);
  }
  const auto fit = fit_log_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LogLinearRejectsNonPositiveX) {
  EXPECT_THROW(fit_log_linear({0.0, 2.0}, {1.0, 2.0}), ContractViolation);
}

TEST(Stats, PowerLawRejectsNonPositive) {
  EXPECT_THROW(fit_power_law({1, 2}, {0, 1}), ContractViolation);
  EXPECT_THROW(fit_power_law({-1, 2}, {1, 1}), ContractViolation);
}

TEST(Stats, Ci95ShrinksWithSamples) {
  Rng rng(23);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.uniform01());
  for (int i = 0; i < 1000; ++i) large.push_back(rng.uniform01());
  EXPECT_GT(ci95_halfwidth(summarize(small)),
            ci95_halfwidth(summarize(large)));
}

TEST(Stats, RatioGuardsZero) {
  EXPECT_DOUBLE_EQ(ratio(6, 3), 2.0);
  EXPECT_THROW(ratio(1, 0), ContractViolation);
}

}  // namespace
}  // namespace nrn

// The serve daemon end to end, in process: a SweepServer on a scratch
// unix socket (and an ephemeral TCP port), driven through LineClient.
// Covers the serving tier's acceptance bars: daemon reports bit-identical
// to the serial sweep, warm resubmission computes nothing, two concurrent
// clients with overlapping plans share cell computations, malformed and
// oversized requests get structured errors (never a dead daemon), and a
// client killed mid-plan does not poison a resubmission.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "sim_test_util.hpp"

namespace nrn::serve {
namespace {

namespace fs = std::filesystem;

using sim::testutil::shard_bytes;

std::string scratch_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nrn_" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

/// An in-process daemon on a scratch socket; run() on a background thread.
class ServerFixture {
 public:
  explicit ServerFixture(const std::string& leaf,
                         const sim::ProtocolRegistry& registry =
                             sim::extended_registry(),
                         ServerOptions options = {}) {
    const std::string dir = scratch_dir(leaf);
    fs::create_directories(dir);
    options.socket_path = dir + "/serve.sock";
    if (options.cache_dir.empty()) options.cache_dir = dir + "/cache";
    options.scheduler.cell_threads = 2;
    options.scheduler.claim_poll_ms = 10;
    server = std::make_unique<SweepServer>(registry, options);
    loop = std::thread([this] { server->run(); });
  }

  ~ServerFixture() {
    server->request_stop();
    loop.join();
  }

  LineClient connect() {
    return LineClient::connect_unix(server->socket_path());
  }

  std::unique_ptr<SweepServer> server;
  std::thread loop;
};

struct PlanOutcome {
  sim::SweepReport report;
  std::string report_text;
  int accepted_cached = 0;  ///< warm cells reported by `accepted`
  int computed = 0;         ///< plan_done counters
  int cached = 0;
  int cell_done_events = 0;
  int cell_done_cached = 0;
  int cell_done_computed = 0;
};

/// Submits `plan_text` and pumps replies until plan_done.
PlanOutcome submit_and_wait(LineClient& client, const std::string& plan_text) {
  client.send(Message("submit").set("plan", plan_text));
  PlanOutcome outcome;
  auto accepted = client.recv();
  if (!accepted || accepted->type() != "accepted") {
    ADD_FAILURE() << "no accepted reply: "
                  << (accepted ? accepted->serialize() : "EOF");
    return outcome;
  }
  const int plan_id = static_cast<int>(accepted->integer("plan"));
  outcome.accepted_cached = static_cast<int>(accepted->integer("cached"));
  while (true) {
    auto reply = client.recv();
    if (!reply) {
      ADD_FAILURE() << "daemon closed mid-plan";
      return outcome;
    }
    if (reply->type() == "cell_done" &&
        static_cast<int>(reply->integer("plan")) == plan_id) {
      ++outcome.cell_done_events;
      if (reply->str("resolution") == "cached")
        ++outcome.cell_done_cached;
      else
        ++outcome.cell_done_computed;
      continue;
    }
    if (reply->type() == "plan_done" &&
        static_cast<int>(reply->integer("plan")) == plan_id) {
      outcome.computed = static_cast<int>(reply->integer("computed"));
      outcome.cached = static_cast<int>(reply->integer("cached"));
      outcome.report_text = reply->str("report");
      std::istringstream in(outcome.report_text);
      outcome.report = sim::read_shard_file(in);
      return outcome;
    }
    ADD_FAILURE() << "unexpected reply: " << reply->serialize();
    return outcome;
  }
}

const char kPlan[] =
    "topology=path:{8,12},gnp:16:0.3; protocols=decay,greedy; trials=3; "
    "seed=21";

sim::SweepReport serial_report(const std::string& plan_text) {
  return sim::SweepRunner(sim::extended_registry())
      .run(sim::SweepPlan::parse(plan_text));
}

TEST(ServeServer, ReportBitIdenticalToSerialAndWarmRepeatComputesNothing) {
  const auto serial = serial_report(kPlan);
  ServerFixture fixture("srv_warm");
  LineClient client = fixture.connect();

  // Cold submission: every cell computed, report bit-identical to serial.
  const PlanOutcome cold = submit_and_wait(client, kPlan);
  EXPECT_EQ(cold.report_text, shard_bytes(serial));
  EXPECT_EQ(cold.report, serial);
  EXPECT_EQ(cold.accepted_cached, 0);
  EXPECT_EQ(cold.computed, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(cold.cell_done_events, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(cold.cell_done_computed, static_cast<int>(serial.cells.size()));

  // Warm resubmission (same connection): answered entirely from the
  // cache -- zero computed cells, verified via the cell_done counters.
  const PlanOutcome warm = submit_and_wait(client, kPlan);
  EXPECT_EQ(warm.report_text, shard_bytes(serial));
  EXPECT_EQ(warm.accepted_cached, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(warm.computed, 0);
  EXPECT_EQ(warm.cell_done_computed, 0);
  EXPECT_EQ(warm.cell_done_cached, static_cast<int>(serial.cells.size()));

  // status reflects the two completed plans.
  client.send(Message("status"));
  auto status = client.recv();
  ASSERT_TRUE(status && status->type() == "status");
  EXPECT_EQ(status->str("protocol"), kProtocolVersion);
  EXPECT_EQ(status->integer("plans_done"), 2);
  EXPECT_EQ(status->integer("plans_active"), 0);
  EXPECT_EQ(status->integer("cells_computed"),
            static_cast<std::int64_t>(serial.cells.size()));
}

TEST(ServeServer, TracedPlanReportBitIdenticalToSerial) {
  // A trace=1 plan's report rides the wire as opaque shard text, so the
  // per-round series must arrive bit-identical to the serial traced run.
  const char traced_plan[] =
      "topology=path:10; fault=receiver:0.25; protocols=decay; trials=2; "
      "seed=11; trace=1";
  const auto serial = serial_report(traced_plan);
  ServerFixture fixture("srv_traced");
  LineClient client = fixture.connect();

  const PlanOutcome cold = submit_and_wait(client, traced_plan);
  EXPECT_EQ(cold.report_text, shard_bytes(serial));
  EXPECT_EQ(cold.report, serial);
  EXPECT_NE(cold.report_text.find("series informed "), std::string::npos);

  // Warm resubmission replays the traced cell from the cache, series intact.
  const PlanOutcome warm = submit_and_wait(client, traced_plan);
  EXPECT_EQ(warm.report_text, shard_bytes(serial));
  EXPECT_EQ(warm.computed, 0);
}

TEST(ServeServer, ConcurrentOverlappingClientsShareCellComputes) {
  // A and B overlap on path:12 cells; the union is 6 distinct cells while
  // the plans total 8.  Whoever triggers a shared cell's compute counts
  // it; the other side sees it as cached -- so computed_A + computed_B
  // must equal the union, strictly less than the sum of plan sizes.
  const char plan_a[] =
      "topology=path:{8,12}; protocols=decay,greedy; trials=3; seed=21";
  const char plan_b[] =
      "topology=path:{12,16}; protocols=decay,greedy; trials=3; seed=21";
  const auto serial_a = serial_report(plan_a);
  const auto serial_b = serial_report(plan_b);

  ServerFixture fixture("srv_overlap");
  PlanOutcome outcome_a, outcome_b;
  {
    std::thread thread_b([&] {
      LineClient client = fixture.connect();
      outcome_b = submit_and_wait(client, plan_b);
    });
    LineClient client = fixture.connect();
    outcome_a = submit_and_wait(client, plan_a);
    thread_b.join();
  }

  // Both clients receive complete, bit-identical-to-serial reports.
  EXPECT_EQ(outcome_a.report_text, shard_bytes(serial_a));
  EXPECT_EQ(outcome_b.report_text, shard_bytes(serial_b));

  // Shared cells were computed once: 6 distinct cells across 4 + 4 plan
  // cells (2 shared).  The exact split depends on timing; the sum does not.
  EXPECT_EQ(outcome_a.computed + outcome_b.computed, 6);
  EXPECT_LT(outcome_a.computed + outcome_b.computed,
            static_cast<int>(serial_a.cells.size() + serial_b.cells.size()));
  // Per-plan counters always partition the plan (warm cells count as
  // cached).
  EXPECT_EQ(outcome_a.computed + outcome_a.cached,
            static_cast<int>(serial_a.cells.size()));
  EXPECT_EQ(outcome_b.computed + outcome_b.cached,
            static_cast<int>(serial_b.cells.size()));
}

TEST(ServeServer, MalformedAndOversizedRequestsGetStructuredErrors) {
  ServerOptions options;
  options.max_line_bytes = 4096;
  ServerFixture fixture("srv_bad", sim::extended_registry(), options);
  LineClient client = fixture.connect();

  // Protocol-level garbage: every line gets an `error` reply in order.
  const std::vector<std::string> bad = {
      "not json",
      "{\"plan\":\"no type\"}",
      "{\"type\":\"submit\"}",                        // missing plan field
      "{\"type\":\"submit\",\"plan\":\"topology=\"}",  // bad plan spec
      "{\"type\":\"nonsense\"}",                      // unknown type
      "{\"type\":\"submit\",\"plan\":{\"nested\":1}}",  // nested value
  };
  for (const auto& line : bad) {
    client.send_raw(line + "\n");
    auto reply = client.recv();
    ASSERT_TRUE(reply) << line;
    EXPECT_EQ(reply->type(), "error") << line;
  }

  // An oversized line (no newline until far past the cap) is answered
  // with an error and discarded without wedging the framing.
  std::string huge = "{\"type\":\"submit\",\"plan\":\"";
  huge.append(3 * options.max_line_bytes, 'x');
  huge += "\"}\n";
  client.send_raw(huge);
  auto reply = client.recv();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->type(), "error");

  // The daemon is alive and the connection still works.
  client.send(Message("ping"));
  auto pong = client.recv();
  ASSERT_TRUE(pong);
  EXPECT_EQ(pong->type(), "pong");
  EXPECT_EQ(pong->str("protocol"), kProtocolVersion);

  // And real work still succeeds after all that abuse.
  const char small_plan[] = "topology=path:8; protocols=decay; trials=2";
  const PlanOutcome outcome = submit_and_wait(client, small_plan);
  EXPECT_EQ(outcome.report, serial_report(small_plan));
}

TEST(ServeServer, DisconnectMidPlanThenResubmitGetsFullReport) {
  const auto serial = serial_report(kPlan);
  ServerFixture fixture("srv_kill");
  {
    // First client submits and vanishes right after `accepted` -- the
    // daemon detaches its plan; any in-flight cell finishes into the
    // cache.
    LineClient doomed = fixture.connect();
    doomed.send(Message("submit").set("plan", kPlan));
    auto accepted = doomed.recv();
    ASSERT_TRUE(accepted && accepted->type() == "accepted");
    // ~LineClient closes the socket.
  }
  // A fresh client resubmits the same plan and gets the complete,
  // bit-identical report; cached + computed covers every cell.
  LineClient client = fixture.connect();
  const PlanOutcome outcome = submit_and_wait(client, kPlan);
  EXPECT_EQ(outcome.report_text, shard_bytes(serial));
  EXPECT_EQ(outcome.report, serial);
  EXPECT_EQ(outcome.cell_done_events, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(outcome.computed + outcome.cached,
            static_cast<int>(serial.cells.size()));
}

TEST(ServeServer, QueryAnswersFromWarmCacheOnly) {
  const char small_plan[] = "topology=path:8; protocols=decay; trials=2";
  const auto serial = serial_report(small_plan);
  ServerFixture fixture("srv_query");
  LineClient client = fixture.connect();

  client.send(Message("query").set("plan", small_plan));
  auto cold = client.recv();
  ASSERT_TRUE(cold && cold->type() == "query_result");
  EXPECT_FALSE(cold->boolean("complete"));
  EXPECT_EQ(cold->integer("cached"), 0);
  EXPECT_FALSE(cold->has("report"));

  submit_and_wait(client, small_plan);

  client.send(Message("query").set("plan", small_plan));
  auto warm = client.recv();
  ASSERT_TRUE(warm && warm->type() == "query_result");
  EXPECT_TRUE(warm->boolean("complete"));
  EXPECT_EQ(warm->str("report"), shard_bytes(serial));
}

TEST(ServeServer, TcpListenerSpeaksTheSameProtocol) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  ServerFixture fixture("srv_tcp", sim::extended_registry(), options);
  ASSERT_GT(fixture.server->tcp_port(), 0);
  LineClient client = LineClient::connect_tcp(fixture.server->tcp_port());
  client.send(Message("ping"));
  auto pong = client.recv();
  ASSERT_TRUE(pong);
  EXPECT_EQ(pong->type(), "pong");

  const char small_plan[] = "topology=path:8; protocols=decay; trials=2";
  const PlanOutcome outcome = submit_and_wait(client, small_plan);
  EXPECT_EQ(outcome.report, serial_report(small_plan));
}

TEST(ServeServer, ShutdownRequestStopsTheLoop) {
  const std::string dir = scratch_dir("srv_bye");
  fs::create_directories(dir);
  ServerOptions options;
  options.socket_path = dir + "/serve.sock";
  options.cache_dir = dir + "/cache";
  SweepServer server(sim::extended_registry(), options);
  std::thread loop([&] { server.run(); });
  {
    LineClient client = LineClient::connect_unix(options.socket_path);
    client.send(Message("shutdown"));
    auto bye = client.recv();
    ASSERT_TRUE(bye);
    EXPECT_EQ(bye->type(), "bye");
  }
  loop.join();  // `shutdown` alone must end run()
  // The socket file is gone once the server is destroyed.
  server.request_stop();  // harmless after the fact
}

TEST(ServeServer, RefusesSocketOfALiveDaemonButReplacesAStaleFile) {
  const std::string dir = scratch_dir("srv_stale");
  fs::create_directories(dir);
  ServerOptions options;
  options.socket_path = dir + "/serve.sock";
  options.cache_dir = dir + "/cache";
  {
    SweepServer live(sim::extended_registry(), options);
    EXPECT_THROW(SweepServer(sim::extended_registry(), options),
                 sim::SpecError);
  }
  // A crashed daemon leaves a socket file nobody answers on.  Fabricate
  // one (bind, close, no unlink) and check the next daemon replaces it.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ::close(fd);
    ASSERT_TRUE(fs::exists(options.socket_path));  // the stale leftover
  }
  SweepServer replacement(sim::extended_registry(), options);
  std::thread loop([&] { replacement.run(); });
  LineClient client = LineClient::connect_unix(options.socket_path);
  client.send(Message("ping"));
  auto pong = client.recv();
  EXPECT_TRUE(pong && pong->type() == "pong");
  replacement.request_stop();
  loop.join();
}

}  // namespace
}  // namespace nrn::serve

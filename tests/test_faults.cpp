// Statistical properties of the two fault models (Section 3.1): rates match
// p, sender faults hit all receivers of a sender together, receiver faults
// strike independently.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace nrn::radio {
namespace {

using graph::Graph;
using graph::make_path;
using graph::make_star;

TEST(Faults, FaultlessNeverLoses) {
  const Graph g = make_star(20);
  RadioNetwork net(g, FaultModel::faultless(), Rng(3));
  for (int r = 0; r < 200; ++r) {
    net.set_broadcast(0, Packet{r});
    EXPECT_EQ(net.run_round().size(), 20u);
  }
  EXPECT_EQ(net.totals().sender_fault_losses, 0);
  EXPECT_EQ(net.totals().receiver_fault_losses, 0);
}

TEST(Faults, ReceiverFaultRateMatchesP) {
  const Graph g = make_star(1);
  for (double p : {0.1, 0.5, 0.8}) {
    RadioNetwork net(g, FaultModel::receiver(p), Rng(11));
    const int rounds = 20000;
    int received = 0;
    for (int r = 0; r < rounds; ++r) {
      net.set_broadcast(0, Packet{r});
      received += static_cast<int>(net.run_round().size());
    }
    EXPECT_NEAR(static_cast<double>(received) / rounds, 1.0 - p, 0.02)
        << "p=" << p;
  }
}

TEST(Faults, SenderFaultRateMatchesP) {
  const Graph g = make_star(1);
  for (double p : {0.1, 0.5, 0.8}) {
    RadioNetwork net(g, FaultModel::sender(p), Rng(13));
    const int rounds = 20000;
    int received = 0;
    for (int r = 0; r < rounds; ++r) {
      net.set_broadcast(0, Packet{r});
      received += static_cast<int>(net.run_round().size());
    }
    EXPECT_NEAR(static_cast<double>(received) / rounds, 1.0 - p, 0.02)
        << "p=" << p;
  }
}

TEST(Faults, SenderFaultIsSharedAcrossReceivers) {
  // With sender faults, in every round either all leaves receive or none.
  const Graph g = make_star(10);
  RadioNetwork net(g, FaultModel::sender(0.5), Rng(17));
  int all = 0, none = 0, partial = 0;
  for (int r = 0; r < 2000; ++r) {
    net.set_broadcast(0, Packet{r});
    const auto got = net.run_round().size();
    if (got == 10u)
      ++all;
    else if (got == 0u)
      ++none;
    else
      ++partial;
  }
  EXPECT_EQ(partial, 0);
  EXPECT_GT(all, 700);
  EXPECT_GT(none, 700);
}

TEST(Faults, ReceiverFaultIsIndependentAcrossReceivers) {
  // With receiver faults at p = 0.5 on a 10-leaf star, partial reception
  // should dominate: all-or-nothing rounds have probability 2 * 2^-10.
  const Graph g = make_star(10);
  RadioNetwork net(g, FaultModel::receiver(0.5), Rng(19));
  int partial = 0;
  const int rounds = 2000;
  double total = 0;
  for (int r = 0; r < rounds; ++r) {
    net.set_broadcast(0, Packet{r});
    const auto got = net.run_round().size();
    total += static_cast<double>(got);
    if (got != 0u && got != 10u) ++partial;
  }
  EXPECT_GT(partial, rounds * 9 / 10);
  EXPECT_NEAR(total / rounds, 5.0, 0.3);
}

TEST(Faults, FaultyTransmissionStillCollides) {
  // Sender faults replace the payload with noise but still occupy the
  // channel: two broadcasting neighbors never deliver anything.
  const Graph g = make_star(2);
  RadioNetwork net(g, FaultModel::sender(0.9), Rng(23));
  for (int r = 0; r < 500; ++r) {
    net.set_broadcast(1, Packet{1});
    net.set_broadcast(2, Packet{2});
    EXPECT_TRUE(net.run_round().empty());
  }
}

TEST(Faults, CollisionLossIsNotAFaultLoss) {
  const Graph g = make_star(2);
  RadioNetwork net(g, FaultModel::receiver(0.5), Rng(29));
  net.set_broadcast(1, Packet{1});
  net.set_broadcast(2, Packet{2});
  net.run_round();
  EXPECT_EQ(net.last_round().collision_losses, 1);
  EXPECT_EQ(net.last_round().receiver_fault_losses, 0);
}

TEST(Faults, PathFrontierStillAdvances) {
  // A faulty single edge succeeds with probability 1-p each attempt;
  // a message crosses a 2-node path in ~1/(1-p) rounds.
  const Graph g = make_path(2);
  RadioNetwork net(g, FaultModel::receiver(0.75), Rng(31));
  int rounds = 0;
  while (true) {
    net.set_broadcast(0, Packet{0});
    ++rounds;
    if (!net.run_round().empty()) break;
    ASSERT_LT(rounds, 10000);
  }
  EXPECT_GE(rounds, 1);
}

TEST(Faults, InvalidProbabilityRejected) {
  EXPECT_THROW(FaultModel::sender(1.0), ContractViolation);
  EXPECT_THROW(FaultModel::receiver(-0.1), ContractViolation);
}

TEST(Faults, ToStringNames) {
  EXPECT_EQ(to_string(FaultModel::faultless()), "faultless");
  EXPECT_NE(to_string(FaultModel::sender(0.25)).find("sender"),
            std::string::npos);
  EXPECT_NE(to_string(FaultModel::receiver(0.25)).find("receiver"),
            std::string::npos);
}

}  // namespace
}  // namespace nrn::radio

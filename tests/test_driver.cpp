// Driver: deterministic multi-trial experiments.  The same scenario must
// produce bit-identical ExperimentReports run-to-run and regardless of the
// thread count, and every registered protocol must run end to end through
// the Driver on at least one scenario.
#include "sim/driver.hpp"

#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

using testutil::csv_of;

TEST(Driver, ReportsAreBitIdenticalForTheSameSeed) {
  const auto scenario = Scenario::parse("grid:8x8", "receiver:0.3", 0, 1, 42);
  const auto a = Driver().run(scenario, "decay", 6);
  const auto b = Driver().run(scenario, "decay", 6);
  ASSERT_EQ(a.trials.size(), 6u);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(csv_of(a), csv_of(b));

  // A different seed must change at least the derived trial seeds.
  auto shifted = scenario;
  shifted.seed = 43;
  const auto c = Driver().run(shifted, "decay", 6);
  EXPECT_NE(a.trials.front().net_seed, c.trials.front().net_seed);
}

TEST(Driver, ThreadedTrialsMatchSerialBitForBit) {
  const auto scenario =
      Scenario::parse("grid:10x10", "combined:0.2:0.2", 0, 1, 7);
  const auto serial = Driver().run(scenario, "decay", 8);
  for (const int threads : {2, 4, 8}) {
    DriverOptions options;
    options.threads = threads;
    const auto threaded = Driver().run(scenario, "decay", 8, options);
    EXPECT_EQ(serial.trials, threaded.trials) << threads << " threads";
    EXPECT_EQ(csv_of(serial), csv_of(threaded)) << threads << " threads";
  }
}

TEST(Driver, EveryRegisteredProtocolRunsOnAScenario) {
  // k > 1 exercises the multi-message protocols; the single-message ones
  // broadcast their one message regardless.
  const auto scenario = Scenario::parse("path:24", "receiver:0.2", 0, 3, 11);
  for (const auto& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    const auto report = Driver().run(scenario, name, 2);
    EXPECT_EQ(report.protocol, name);
    EXPECT_EQ(report.node_count, 24);
    ASSERT_EQ(report.trials.size(), 2u);
    EXPECT_TRUE(report.all_completed());
    for (const auto& trial : report.trials) EXPECT_GT(trial.run.rounds(), 0);
    // Reproducibility holds for every protocol, not just decay.
    const auto again = Driver().run(scenario, name, 2);
    EXPECT_EQ(report.trials, again.trials);
  }
}

TEST(Driver, SummaryHelpersMatchTrials) {
  const auto scenario = Scenario::parse("path:16", "none", 0, 1, 2);
  const auto report = Driver().run(scenario, "decay", 5);
  const auto rounds = report.rounds();
  ASSERT_EQ(rounds.size(), 5u);
  for (std::size_t i = 0; i < rounds.size(); ++i)
    EXPECT_DOUBLE_EQ(rounds[i],
                     static_cast<double>(report.trials[i].run.rounds()));
  EXPECT_GT(report.median_rounds(), 0.0);
  EXPECT_GT(report.mean_rounds(), 0.0);
}

TEST(Driver, UnknownProtocolThrows) {
  const auto scenario = Scenario::parse("path:8", "none");
  EXPECT_THROW(Driver().run(scenario, "nope", 1), SpecError);
}

TEST(Driver, EmittersCarryTheTrials) {
  const auto scenario = Scenario::parse("star:32", "receiver:0.4", 0, 1, 13);
  const auto report = Driver().run(scenario, "decay", 3);

  const auto csv = csv_of(report);
  EXPECT_NE(csv.find("trial,rounds,completed"), std::string::npos);
  // 4 comment notes (scenario, capabilities, summary, theory bound) +
  // 1 header + 3 trial rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 8);

  const auto text = testutil::json_of(report);
  EXPECT_NE(text.find("\"protocol\": \"decay\""), std::string::npos);
  EXPECT_NE(text.find("\"topology\": \"star:32\""), std::string::npos);
  EXPECT_NE(text.find("\"trials\": ["), std::string::npos);
  EXPECT_NE(text.find("\"all_completed\": true"), std::string::npos);

  EXPECT_NE(testutil::table_of(report).find("decay on star:32"),
            std::string::npos);
}

TEST(Driver, BudgetExhaustionIsReportedNotThrown) {
  const auto scenario = Scenario::parse("path:256", "none", 0, 1, 3);
  DriverOptions options;
  options.tuning.max_rounds = 4;
  const auto report = Driver().run(scenario, "decay", 2, options);
  EXPECT_FALSE(report.all_completed());
  for (const auto& trial : report.trials) {
    EXPECT_FALSE(trial.run.completed);
    EXPECT_EQ(trial.run.rounds(), 4);
  }
}

}  // namespace
}  // namespace nrn::sim

// Fleet sweep mode: cache-probing cell assignment with claim files.
// Covers the issue's acceptance criteria: two concurrent fleet runners
// over one cache directory merge bit-identically to the serial sweep, a
// killed run resumes recomputing only unfinished cells (asserted via the
// claimed/stolen/skipped counters), and stale claims are stolen.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

namespace fs = std::filesystem;

using testutil::shard_bytes;
using testutil::sweep_csv_of;
using testutil::sweep_json_of;

// Heterogeneous on purpose: gnp and grid cells cost visibly different
// amounts, which is what dynamic claiming is for.
const char kFleetPlan[] =
    "topology=path:{8,12},gnp:16:0.3; fault=none,receiver:0.3; "
    "protocols=decay,greedy; trials=3; seed=21";

SweepReport run_plan(const std::string& plan_text,
                     const SweepOptions& options = {}) {
  const auto plan = SweepPlan::parse(plan_text);
  return SweepRunner(extended_registry()).run(plan, options);
}

std::string scratch_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nrn_" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

SweepOptions fleet_options(const std::string& dir) {
  SweepOptions options;
  options.cache_dir = dir;
  options.assignment = SweepAssignment::kFleet;
  options.fleet_poll_ms = 1;
  return options;
}

TEST(FleetSweep, ColdFleetRunMatchesSerialAndCountsClaims) {
  const auto serial = run_plan(kFleetPlan);
  const auto dir = scratch_dir("fcold");
  const auto fleet = run_plan(kFleetPlan, fleet_options(dir));
  EXPECT_TRUE(fleet.complete());
  EXPECT_EQ(fleet, serial);
  EXPECT_EQ(shard_bytes(fleet), shard_bytes(serial));
  EXPECT_TRUE(fleet.fleet.active);
  EXPECT_EQ(fleet.fleet.claimed, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(fleet.fleet.stolen, 0);
  EXPECT_EQ(fleet.fleet.skipped, 0);
  // No claim markers survive a completed run.
  for (const auto& entry : fs::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".claim") << entry.path();
}

TEST(FleetSweep, RequiresCacheDirAndNoStaticShard) {
  SweepOptions no_cache;
  no_cache.assignment = SweepAssignment::kFleet;
  EXPECT_THROW(run_plan(kFleetPlan, no_cache), ContractViolation);
  SweepOptions sharded = fleet_options(scratch_dir("fshard"));
  sharded.shard_count = 2;
  sharded.shard_index = 0;
  EXPECT_THROW(run_plan(kFleetPlan, sharded), ContractViolation);
}

TEST(FleetSweep, TwoConcurrentRunnersMergeBitIdenticalToSerial) {
  const auto serial = run_plan(kFleetPlan);
  const auto dir = scratch_dir("fconc");
  // Two runners race over one cache directory from different threads;
  // O_EXCL claim creation is atomic across threads exactly as it is
  // across processes, so this exercises the same claim protocol the CI
  // job drives with two nrn_sim processes.
  std::vector<SweepReport> fleet(2);
  {
    std::thread other([&] {
      SweepOptions options = fleet_options(dir);
      options.cell_threads = 2;
      fleet[1] = run_plan(kFleetPlan, options);
    });
    SweepOptions options = fleet_options(dir);
    options.cell_threads = 2;
    fleet[0] = run_plan(kFleetPlan, options);
    other.join();
  }
  // Every runner emits a complete report; the overlapping merge equals
  // the serial run bit for bit, in every serialization.
  for (const auto& report : fleet) {
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report, serial);
  }
  const auto merged = merge_sweep_reports(fleet);
  EXPECT_EQ(merged, serial);
  EXPECT_EQ(shard_bytes(merged), shard_bytes(serial));
  EXPECT_EQ(sweep_csv_of(merged), sweep_csv_of(serial));
  EXPECT_EQ(sweep_json_of(merged), sweep_json_of(serial));
  // Work was partitioned dynamically: each cell computed at least once,
  // and cells one runner computed were cache-skips for the other.
  const int computed = fleet[0].fleet.claimed + fleet[0].fleet.stolen +
                       fleet[1].fleet.claimed + fleet[1].fleet.stolen;
  EXPECT_GE(computed, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(fleet[0].fleet.claimed + fleet[0].fleet.skipped +
                fleet[0].fleet.stolen,
            static_cast<int>(serial.cells.size()));
}

TEST(FleetSweep, KilledRunResumesRecomputingOnlyUnfinishedCells) {
  const auto dir = scratch_dir("fkill");
  const auto first = run_plan(kFleetPlan, fleet_options(dir));

  // Simulate a mid-grid kill: drop some cells' cache entries (a killed
  // process leaves exactly this state -- stored cells survive, running
  // ones never land; its claims are handled by the stale-expiry test).
  const auto plan = SweepPlan::parse(kFleetPlan);
  const ResultCache cache(dir);
  int dropped = 0;
  for (std::size_t i = 0; i < plan.cells.size(); i += 3) {
    fs::remove(cache.entry_path(sweep_cache_key(plan.cells[i], {})));
    ++dropped;
  }
  ASSERT_GT(dropped, 0);

  const auto resumed = run_plan(kFleetPlan, fleet_options(dir));
  EXPECT_EQ(resumed, first);
  EXPECT_EQ(resumed.fleet.claimed, dropped);  // only the missing cells ran
  EXPECT_EQ(resumed.fleet.skipped,
            static_cast<int>(plan.cells.size()) - dropped);
  EXPECT_EQ(resumed.fleet.stolen, 0);

  // A third invocation finds a fully warm cache and computes nothing.
  const auto warm = run_plan(kFleetPlan, fleet_options(dir));
  EXPECT_EQ(warm.fleet.claimed, 0);
  EXPECT_EQ(warm.fleet.skipped, static_cast<int>(plan.cells.size()));
}

TEST(FleetSweep, StaleClaimsAreStolenFreshOnesRespected) {
  const auto dir = scratch_dir("fstale");
  const auto plan = SweepPlan::parse(kFleetPlan);
  const ResultCache cache(dir);
  const auto key0 = sweep_cache_key(plan.cells[0], {});

  // Claim API: exclusive create, TTL-gated steal, release.
  EXPECT_TRUE(cache.try_claim(key0));
  EXPECT_FALSE(cache.try_claim(key0));                  // held
  EXPECT_FALSE(cache.steal_stale_claim(key0, 3600.0));  // fresh
  EXPECT_TRUE(cache.steal_stale_claim(key0, 0.0));      // expired by ttl=0
  EXPECT_FALSE(cache.steal_stale_claim(key0, 0.0));     // already gone
  EXPECT_TRUE(cache.try_claim(key0));
  cache.release_claim(key0);
  EXPECT_TRUE(cache.try_claim(key0));
  cache.release_claim(key0);

  // A dead worker's claim (no process will ever release it) must not
  // block the fleet once the TTL expires: the runner steals and computes.
  ASSERT_TRUE(cache.try_claim(key0));
  SweepOptions options = fleet_options(dir);
  options.claim_ttl_seconds = 0.0;
  const auto report = run_plan(kFleetPlan, options);
  EXPECT_EQ(report, run_plan(kFleetPlan));
  EXPECT_EQ(report.fleet.stolen, 1);
  EXPECT_EQ(report.fleet.claimed, static_cast<int>(plan.cells.size()) - 1);
}

TEST(FleetSweep, UnclaimableDirectoryFailsLoudlyInsteadOfPolling) {
  // Only EEXIST means "a peer holds the claim"; any other claim-create
  // failure must throw, or a fleet pointed at a broken shared mount would
  // spin in its poll loop forever with no diagnostic.
  const auto dir = scratch_dir("fbroken");
  const ResultCache cache(dir);
  const auto plan = SweepPlan::parse(kFleetPlan);
  const auto key = sweep_cache_key(plan.cells[0], {});
  fs::remove_all(dir);  // the directory vanishes under the fleet
  EXPECT_THROW(cache.try_claim(key), SpecError);
}

TEST(FleetSweep, ResumeRebuildsFromWarmCacheWithoutComputing) {
  const auto dir = scratch_dir("fresume");
  const auto serial = run_plan(kFleetPlan);

  SweepOptions resume;
  resume.cache_dir = dir;
  resume.assignment = SweepAssignment::kResume;
  // Cold cache: resume has nothing to rebuild from and must say so.
  EXPECT_THROW(run_plan(kFleetPlan, resume), SpecError);

  run_plan(kFleetPlan, fleet_options(dir));  // warm it
  const auto rebuilt = run_plan(kFleetPlan, resume);
  EXPECT_EQ(rebuilt, serial);
  EXPECT_EQ(shard_bytes(rebuilt), shard_bytes(serial));
  EXPECT_TRUE(rebuilt.fleet.active);
  EXPECT_EQ(rebuilt.fleet.skipped, static_cast<int>(serial.cells.size()));
  EXPECT_EQ(rebuilt.cache_hits(), static_cast<int>(serial.cells.size()));

  // Partially warm cache: resume refuses rather than silently recomputing.
  const auto plan = SweepPlan::parse(kFleetPlan);
  const ResultCache cache(dir);
  fs::remove(cache.entry_path(sweep_cache_key(plan.cells[2], {})));
  EXPECT_THROW(run_plan(kFleetPlan, resume), SpecError);
}

TEST(FleetSweep, CountersSurfaceInAllThreeEmittersOnlyWhenActive) {
  const auto dir = scratch_dir("femit");
  const auto fleet = run_plan(kFleetPlan, fleet_options(dir));
  const auto serial = run_plan(kFleetPlan);

  std::ostringstream table;
  write_sweep_table(table, fleet);
  EXPECT_NE(table.str().find("fleet: claimed"), std::string::npos);

  const auto csv = sweep_csv_of(fleet);
  EXPECT_NE(csv.find("# fleet: claimed="), std::string::npos);
  const auto json = sweep_json_of(fleet);
  EXPECT_NE(json.find("\"fleet\": {\"claimed\": "), std::string::npos);

  // Static runs emit no fleet block at all, and stripping the fleet
  // comment from a fleet CSV yields the serial CSV byte-for-byte.
  EXPECT_EQ(sweep_csv_of(serial).find("# fleet:"), std::string::npos);
  EXPECT_EQ(sweep_json_of(serial).find("\"fleet\""), std::string::npos);
  std::string stripped;
  std::istringstream lines(csv);
  for (std::string line; std::getline(lines, line);)
    if (line.rfind("# fleet:", 0) != 0) stripped += line + "\n";
  EXPECT_EQ(stripped, sweep_csv_of(serial));
}

}  // namespace
}  // namespace nrn::sim

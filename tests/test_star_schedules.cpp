// Star schedules: the Lemma 15 / Lemma 16 measurement machinery.
#include "core/star_schedules.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;
using topology::make_star;

TEST(StarSchedules, AdaptiveRoutingCompletesFaultless) {
  const auto star = make_star(32);
  RadioNetwork net(star.graph, FaultModel::faultless(), Rng(1));
  const auto r = run_star_adaptive_routing(net, star, 10, 1'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 10);  // one round per message without faults
}

TEST(StarSchedules, AdaptiveRoutingPaysLogNPerMessage) {
  // With receiver faults at p = 1/2 the expected per-message cost is about
  // log2(n) + O(1) rounds (coupon-collector tail over n leaves).
  const auto star = make_star(256);
  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(2));
  const std::int64_t k = 64;
  const auto r = run_star_adaptive_routing(net, star, k, 10'000'000);
  EXPECT_TRUE(r.completed);
  const double rpm = r.rounds_per_message();
  EXPECT_GT(rpm, 0.5 * std::log2(256));
  EXPECT_LT(rpm, 3.0 * std::log2(256) + 8);
}

TEST(StarSchedules, AdaptiveRoutingBudgetRespected) {
  const auto star = make_star(64);
  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(3));
  const auto r = run_star_adaptive_routing(net, star, 1000, 20);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 20);
}

TEST(StarSchedules, NonAdaptiveNeedsEnoughReps) {
  const auto star = make_star(128);
  // One rep with faults almost surely misses a leaf.
  RadioNetwork net1(star.graph, FaultModel::receiver(0.5), Rng(4));
  EXPECT_FALSE(run_star_nonadaptive_routing(net1, star, 4, 1).completed);
  // Generous reps succeed.
  RadioNetwork net2(star.graph, FaultModel::receiver(0.5), Rng(5));
  const auto r = run_star_nonadaptive_routing(net2, star, 4, 40);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 4 * 40);
}

TEST(StarSchedules, RsCodingCompletesInLinearRounds) {
  const auto star = make_star(256);
  const std::int64_t k = 128;
  const auto m = rs_packet_count(k, 257, 0.5);
  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(6));
  const auto r = run_star_rs_coding(net, star, k, m);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, m);
  // Theta(1) per message: the packet count is a constant multiple of k.
  EXPECT_LT(r.rounds_per_message(), 4.0);
}

TEST(StarSchedules, RsCodingFailsWithTooFewPackets) {
  const auto star = make_star(64);
  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(7));
  // Exactly k packets at p=1/2: every leaf must catch all of them; with 64
  // leaves this is hopeless.
  const auto r = run_star_rs_coding(net, star, 32, 32);
  EXPECT_FALSE(r.completed);
}

TEST(StarSchedules, RsPacketCountScalesInverselyWithSurvival) {
  const auto m_half = rs_packet_count(100, 64, 0.5);
  const auto m_tenth = rs_packet_count(100, 64, 0.9);
  EXPECT_GT(m_tenth, 4 * m_half);
  EXPECT_GE(m_half, 200);  // at least k / (1-p)
}

TEST(StarSchedules, GapEmergesBetweenRoutingAndCoding) {
  // The Theorem 17 shape at one size: routing rpm / coding rpm ~ log n.
  const auto star = make_star(512);
  const std::int64_t k = 64;
  RadioNetwork net_r(star.graph, FaultModel::receiver(0.5), Rng(8));
  const auto routing = run_star_adaptive_routing(net_r, star, k, 10'000'000);
  RadioNetwork net_c(star.graph, FaultModel::receiver(0.5), Rng(9));
  const auto coding = run_star_rs_coding(net_c, star, k,
                                         rs_packet_count(k, 513, 0.5));
  ASSERT_TRUE(routing.completed);
  ASSERT_TRUE(coding.completed);
  const double gap =
      routing.rounds_per_message() / coding.rounds_per_message();
  EXPECT_GT(gap, 2.0);  // log2(512)=9 vs constant ~2.5
}

TEST(StarSchedules, SenderFaultsMakeRoutingCheap) {
  // Under sender faults all leaves hear the same clean rounds, so adaptive
  // routing costs ~1/(1-p) per message, not log n -- the asymmetry behind
  // Theorem 28.
  const auto star = make_star(256);
  RadioNetwork net(star.graph, FaultModel::sender(0.5), Rng(10));
  const auto r = run_star_adaptive_routing(net, star, 64, 1'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_LT(r.rounds_per_message(), 4.0);
}

TEST(StarSchedules, ParameterValidation) {
  const auto star = make_star(4);
  RadioNetwork net(star.graph, FaultModel::faultless(), Rng(11));
  EXPECT_THROW(run_star_adaptive_routing(net, star, 0, 10),
               ContractViolation);
  EXPECT_THROW(run_star_rs_coding(net, star, 4, 3), ContractViolation);
  EXPECT_THROW(run_star_nonadaptive_routing(net, star, 0, 1),
               ContractViolation);
}

}  // namespace
}  // namespace nrn::core

// bench_diff: compares two google-benchmark JSON output files and reports
// per-benchmark speedups/regressions.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold=0.25] [--fail]
//              [--allow-debug]
//
// Prints one line per benchmark present in both files with the time ratio
// (current / baseline; < 1 is faster) and items/sec where available.  A
// benchmark whose time ratio exceeds 1 + threshold is flagged as a
// regression.  Exit status is 0 unless --fail is given and a regression
// was flagged, so CI can start warn-only and tighten later.
//
// Both files must declare an optimized build: the bench binary stamps
// "nrn_build_type" into the JSON context (falling back to the library's
// "library_build_type"), and bench_diff refuses (exit 2) to compare a file
// that says "debug" -- debug timings are noise and would both mask real
// regressions and flag phantom ones.  --allow-debug overrides the refusal
// for local experimentation only; never commit debug numbers.
//
// The parser is deliberately minimal: it understands exactly the flat
// "benchmarks" array google-benchmark emits ("name", "real_time",
// "time_unit", "items_per_second"), not general JSON.
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Locale-independent double parse (bench_diff links no library code, so it
/// cannot use common::parse_real; std::from_chars is locale-free by spec).
/// Returns 0.0 on malformed input, matching the old atof behavior.
double parse_double(const std::string& text) {
  double value = 0.0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

struct BenchResult {
  double real_time = 0.0;  // nanoseconds
  double items_per_second = 0.0;
};

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

/// Extracts a "key": value pair scanning forward from `pos`; returns the
/// raw value token (string values come back without quotes).
bool find_field(const std::string& text, std::size_t pos, std::size_t limit,
                const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto at = text.find(needle, pos);
  if (at == std::string::npos || at >= limit) return false;
  auto v = at + needle.size();
  while (v < text.size() && (text[v] == ' ' || text[v] == '\t')) ++v;
  if (v >= text.size()) return false;
  if (text[v] == '"') {
    const auto close = text.find('"', v + 1);
    if (close == std::string::npos) return false;
    out = text.substr(v + 1, close - v - 1);
    return true;
  }
  auto end = v;
  while (end < text.size() && std::strchr(",}\n\r ", text[end]) == nullptr)
    ++end;
  out = text.substr(v, end - v);
  return true;
}

/// The file's declared build type: "nrn_build_type" (stamped by our bench
/// main) if present, else the library's "library_build_type", else "".
std::string declared_build_type(const std::string& text) {
  std::string value;
  if (find_field(text, 0, text.size(), "nrn_build_type", value)) return value;
  if (find_field(text, 0, text.size(), "library_build_type", value))
    return value;
  return "";
}

std::map<std::string, BenchResult> parse_bench_file(const std::string& path,
                                                    bool allow_debug) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string text = raw.str();

  const std::string build_type = declared_build_type(text);
  if (build_type != "release" && !allow_debug) {
    std::fprintf(stderr,
                 "bench_diff: %s declares build type '%s', not 'release' -- "
                 "debug timings are noise; regenerate from an optimized "
                 "build or pass --allow-debug\n",
                 path.c_str(),
                 build_type.empty() ? "(none)" : build_type.c_str());
    std::exit(2);
  }

  std::map<std::string, BenchResult> results;
  // Benchmark entries all carry "run_type"; each object starts at a '{'
  // shortly before its "name" field.
  std::size_t pos = text.find("\"benchmarks\"");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "bench_diff: %s has no benchmarks array\n",
                 path.c_str());
    std::exit(2);
  }
  while ((pos = text.find("\"name\":", pos)) != std::string::npos) {
    const auto object_end = text.find('}', pos);
    const auto limit =
        object_end == std::string::npos ? text.size() : object_end;
    std::string name, run_type, time, unit, items;
    if (!find_field(text, pos, limit, "name", name)) break;
    find_field(text, pos, limit, "run_type", run_type);
    BenchResult r;
    if (find_field(text, pos, limit, "real_time", time)) {
      r.real_time = parse_double(time);
      if (find_field(text, pos, limit, "time_unit", unit))
        r.real_time *= unit_to_ns(unit);
    }
    if (find_field(text, pos, limit, "items_per_second", items))
      r.items_per_second = parse_double(items);
    // Skip aggregate rows (mean/median/stddev) -- compare raw iterations.
    if (run_type.empty() || run_type == "iteration") results[name] = r;
    pos = limit + 1;
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double threshold = 0.25;
  bool fail_on_regression = false;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0)
      threshold = parse_double(arg.substr(12));
    else if (arg == "--fail")
      fail_on_regression = true;
    else if (arg == "--allow-debug")
      allow_debug = true;
    else
      files.push_back(arg);
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--threshold=0.25] [--fail] [--allow-debug]\n");
    return 2;
  }

  const auto baseline = parse_bench_file(files[0], allow_debug);
  const auto current = parse_bench_file(files[1], allow_debug);

  int regressions = 0, compared = 0;
  std::printf("%-44s %12s %12s %8s\n", "benchmark", "base(ns)", "cur(ns)",
              "ratio");
  for (const auto& [name, base] : baseline) {
    const auto it = current.find(name);
    if (it == current.end() || base.real_time <= 0.0) continue;
    ++compared;
    const double ratio = it->second.real_time / base.real_time;
    const bool regressed = ratio > 1.0 + threshold;
    regressions += regressed ? 1 : 0;
    // nrn-lint: allow(locale-float): human-facing diagnostic in a
    // standalone tool (links no library code, so numio is unavailable);
    // nothing parses this output.
    std::printf("%-44s %12.0f %12.0f %7.2fx%s\n", name.c_str(),
                base.real_time, it->second.real_time, ratio,
                regressed ? "  REGRESSION" : "");
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_diff: no common benchmarks to compare\n");
    return 2;
  }
  // nrn-lint: allow(locale-float): human-facing summary line, same as above.
  std::printf("%d benchmark(s) compared, %d regression(s) beyond %.0f%%\n",
              compared, regressions, threshold * 100.0);
  return (fail_on_regression && regressions > 0) ? 1 : 0;
}

#!/usr/bin/env python3
"""nrn_lint: the project-invariant linter.

Walks the C++ translation units under src/, tools/ and bench/ and enforces
the determinism invariants this codebase has already bled for (PR 5's
cache-write race and PR 7's locale round-trip bugs were both found in the
field; these rules make that class of regression a build failure instead).

Rules
-----
locale-float      Locale-sensitive floating-point formatting/parsing
                  (std::stod/stof/stold, strtod/strtof/strtold, atof,
                  printf-family calls with a float conversion, and
                  std::to_string of a floating expression) anywhere outside
                  common/numio.  numio pins the C locale via uselocale; raw
                  calls silently follow LC_NUMERIC and corrupt round trips
                  under comma-decimal locales.
rng               rand()/srand(), std::random_device, std::mt19937 (and the
                  other std engines/distributions) outside common/rng.  All
                  randomness must come from the v4 coin tape; a stray std
                  engine is either nondeterministic across runs or across
                  standard libraries.
unordered-emit    std::unordered_map / std::unordered_set in emitter,
                  report, table, or wire translation units.  Iteration
                  order of the unordered containers is
                  implementation-defined, so anything they feed into
                  serialized output breaks bit-identity between builds.
raw-thread        std::thread / std::jthread outside common/task_pool and
                  serve/.  Ad-hoc threads bypass the pool's slot
                  discipline (per-slot workspaces, nesting-safe reentry)
                  and are invisible to the TSan stress tests.
format-version    Every record/shard/cache format literal ("experiment vN",
                  "nrn-sweep-shard vN", "nrn-sweep-cache vN") must agree
                  with the single kSweepFormatVersion constant
                  (src/sim/format_version.hpp).  With --diff REF, a change
                  to a serialization file that does not touch
                  format_version.hpp is also flagged: if you changed what
                  the bytes mean, bump the version.
rng-batch         Direct scalar Rng::mix64 calls in kernel/staging
                  translation units (src/radio/, src/core/, and any file
                  named *kernel*/*lockstep*/*staging*).  Engine v4 prices
                  fault coins through the batched mixers (mix64_batch /
                  coin_threshold_batch), which are bit-identical to the
                  scalar mixer and auto-vectorize; a stray per-coin mix64
                  in a hot loop silently forfeits that.  Waive it where a
                  genuinely scalar coin is correct.
fault-fields      Direct FaultModel field access (FaultKind::, fault.kind,
                  fault.p, fault.p_receiver) outside src/radio/.  The
                  channel abstraction (radio/channel_model.hpp) is the one
                  door into the fault layer; sim/tool/bench code reads the
                  derived helpers (is_faultless, effective_loss, to_string)
                  or the scenario's fault_text, so an SINR channel can
                  replace the edge-fault layer without silent misreads.
waiver-reason     A waiver comment that names no reason.  Waivers are
                  `// nrn-lint: allow(<rule>): <reason>` on the offending
                  line or the line above; the reason string is mandatory.

Usage
-----
  nrn_lint.py [--root DIR] [--diff REF] [--self-test] [files...]

With no file arguments, scans DIR/src, DIR/tools and DIR/bench.  Exit
status is 0 when clean, 1 on violations, 2 on usage errors.  --self-test
runs every fixture under tests/lint_fixtures/ against its embedded
`// expect:` declarations and exits nonzero on any mismatch.
"""

import argparse
import os
import re
import subprocess
import sys

CXX_SUFFIXES = (".cpp", ".cc", ".hpp", ".h")

# Directories scanned relative to --root when no explicit files are given.
DEFAULT_SCAN_DIRS = ("src", "tools", "bench")

# Files whose whole job is the exempted behaviour.
LOCALE_EXEMPT = re.compile(r"(^|/)common/numio\.(cpp|hpp)$")
RNG_EXEMPT = re.compile(r"(^|/)common/rng\.(cpp|hpp)$")
THREAD_EXEMPT = re.compile(r"(^|/)(common/task_pool\.(cpp|hpp)|serve/[^/]+)$")

# The fault layer's home: the only directory allowed to read FaultModel's
# raw fields (the kernels and the channel abstraction live here).
FAULT_FIELD_EXEMPT = re.compile(r"(^|/)radio/")

# Translation units whose output must be byte-stable (emitters, the report
# and table renderers, the wire codec).
EMIT_UNITS = re.compile(r"(^|/)[^/]*(report|table|wire|emit)[^/]*\.(cpp|hpp|h|cc)$")

# Kernel/staging translation units: fault coins here must go through the
# batched mixers (mix64_batch / coin_threshold_batch), not per-coin mix64.
RNG_BATCH_UNITS = re.compile(
    r"(^|/)(radio|core)/[^/]+\.(cpp|hpp|h|cc)$"
    r"|(^|/)[^/]*(kernel|lockstep|staging)[^/]*\.(cpp|hpp|h|cc)$")
MIX64_CALL = re.compile(r"\bmix64\s*\(")  # mix64_batch( does not match

# Serialization files: a diff touching any of these must also touch the
# format-version header (checked in --diff mode).
SERIALIZATION_FILES = (
    "src/sim/sweep_runner.cpp",
    "src/sim/sweep_runner.hpp",
    "src/sim/protocol.hpp",
    "src/sim/protocol.cpp",
)
FORMAT_VERSION_HEADER = "src/sim/format_version.hpp"

FORMAT_LITERAL = re.compile(
    r"(?:experiment|nrn-sweep-shard|nrn-sweep-cache) v(\d+)")
FORMAT_CONSTANT = re.compile(r"kSweepFormatVersion\s*=\s*(\d+)")

WAIVER = re.compile(r"//\s*nrn-lint:\s*allow\(([a-z-]+)\)(?::\s*(\S.*))?")

PRINTF_CALL = re.compile(r"\b(?:std::)?(?:sn?printf|s?printf|fprintf|vs?printf|vsnprintf|vfprintf)\s*\(")
FLOAT_CONVERSION = re.compile(r'%[-+ #0\']*[\d*]*(?:\.[\d*]+)?(?:[hlLqjzt]|ll)?[aefgAEFG]')

LINE_RULES = [
    # (rule, regex, exempt-path-regex, message)
    ("locale-float",
     re.compile(r"\bstd::sto(?:d|f|ld)\s*\("),
     LOCALE_EXEMPT,
     "std::stod/stof/stold follow LC_NUMERIC; use nrn::parse_real (common/numio)"),
    ("locale-float",
     re.compile(r"\b(?:std::)?strto(?:d|f|ld)(?:_l)?\s*\("),
     LOCALE_EXEMPT,
     "strtod-family calls follow LC_NUMERIC; use nrn::parse_real (common/numio)"),
    ("locale-float",
     re.compile(r"\b(?:std::)?atof\s*\("),
     LOCALE_EXEMPT,
     "atof is locale-sensitive and reports no errors; use nrn::parse_real"),
    ("locale-float",
     re.compile(r"\bstd::to_string\s*\(\s*[^()]*(?:\d\.\d|\bdouble\b|\bfloat\b)"),
     LOCALE_EXEMPT,
     "std::to_string of a floating value follows LC_NUMERIC; use "
     "nrn::format_real / format_real_hex (common/numio)"),
    ("rng",
     re.compile(r"\b(?:std::)?s?rand\s*\("),
     RNG_EXEMPT,
     "rand()/srand() is global-state, non-reproducible randomness; use common/rng"),
    ("rng",
     re.compile(r"\bstd::random_device\b"),
     RNG_EXEMPT,
     "std::random_device is nondeterministic by design; seeds come from the scenario"),
    ("rng",
     re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\w+|knuth_b)\b"),
     RNG_EXEMPT,
     "std engines are not the v4 coin tape; use common/rng (Rng)"),
    ("rng",
     re.compile(r"\bstd::(?:uniform_(?:int|real)_distribution|normal_distribution|"
                r"bernoulli_distribution|binomial_distribution)\b"),
     RNG_EXEMPT,
     "std distributions are implementation-defined across standard libraries; "
     "use the Rng primitives"),
    ("raw-thread",
     re.compile(r"\bstd::j?thread\b"),
     THREAD_EXEMPT,
     "raw std::thread bypasses TaskPool slot discipline; use common/task_pool"),
    ("fault-fields",
     re.compile(r"\bFaultKind\s*::"
                r"|\b(?:fault|fault_model\(\))\s*\.\s*(?:kind|p|p_receiver)\b"),
     FAULT_FIELD_EXEMPT,
     "direct FaultModel field access outside src/radio/: read the derived "
     "helpers (is_faultless, effective_loss, to_string) or the scenario's "
     "fault_text instead, so the ChannelModel abstraction stays the only "
     "door into the fault layer"),
]


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no  # 1-based; 0 for file-level findings
        self.rule = rule
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line_no}" if self.line_no else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line):
    """Blanks out string/char literal contents and comment text so rule
    regexes only see code.  Printf format checking uses the raw line."""
    out = []
    i = 0
    n = len(line)
    state = None  # None | '"' | "'"
    while i < n:
        c = line[i]
        if state is None:
            if c == '/' and i + 1 < n and line[i + 1] in '/*':
                # Line scanning only: treat the rest of the line as comment.
                break
            if c in '"\'':
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        else:
            if c == '\\':
                out.append('  ')
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            else:
                out.append(' ')
            i += 1
    return ''.join(out)


def parse_waivers(lines):
    """Maps line number (1-based) -> {rule: reason_or_None}.  A waiver
    covers its own line plus the next code line: comment-only continuation
    lines in between stay covered, so a waiver may open a multi-line
    comment explaining itself."""
    waivers = {}
    for idx, line in enumerate(lines, start=1):
        for match in WAIVER.finditer(line):
            rule, reason = match.group(1), match.group(2)
            waivers.setdefault(idx, {})[rule] = reason
            for follower in range(idx + 1, len(lines) + 1):
                waivers.setdefault(follower, {})[rule] = reason
                if not lines[follower - 1].lstrip().startswith("//"):
                    break  # covered the first code line; stop
    return waivers


def lint_file(rel, text):
    violations = []
    lines = text.splitlines()
    waivers = parse_waivers(lines)

    def report(line_no, rule, message):
        waived = waivers.get(line_no, {})
        if rule in waived:
            if not waived[rule]:
                violations.append(Violation(
                    rel, line_no, "waiver-reason",
                    f"waiver for '{rule}' has no reason; write "
                    f"// nrn-lint: allow({rule}): <why this is safe>"))
            return
        violations.append(Violation(rel, line_no, rule, message))

    emit_unit = bool(EMIT_UNITS.search(rel))
    batch_unit = (bool(RNG_BATCH_UNITS.search(rel))
                  and not RNG_EXEMPT.search(rel))
    for idx, raw in enumerate(lines, start=1):
        code = strip_strings_and_comments(raw)
        for rule, pattern, exempt, message in LINE_RULES:
            if exempt.search(rel):
                continue
            if pattern.search(code):
                report(idx, rule, message)
        # printf float conversions live inside string literals, so this
        # check reads the raw line: a printf-family call whose visible
        # format string formats a float.
        if not LOCALE_EXEMPT.search(rel) and PRINTF_CALL.search(code):
            literals = re.findall(r'"((?:[^"\\]|\\.)*)"', raw)
            if any(FLOAT_CONVERSION.search(lit) for lit in literals):
                report(idx, "locale-float",
                       "printf-family float conversion follows LC_NUMERIC; "
                       "use nrn::format_real (common/numio)")
        if emit_unit and re.search(r"\bstd::unordered_(?:map|set)\b", code):
            report(idx, "unordered-emit",
                   "unordered container in an emitter/report/wire unit: "
                   "iteration order is implementation-defined, output "
                   "would not be byte-stable; use std::map / std::set")
        if batch_unit and MIX64_CALL.search(code):
            report(idx, "rng-batch",
                   "per-coin Rng::mix64 in a kernel/staging unit: price "
                   "coins through mix64_batch / coin_threshold_batch "
                   "(bit-identical, auto-vectorizes), or waive with a "
                   "reason if a scalar coin is genuinely right here")
    return violations


def check_format_versions(files):
    """Cross-file rule: every format literal must match the single
    kSweepFormatVersion definition."""
    violations = []
    constants = []  # (rel, line_no, value)
    literals = []   # (rel, line_no, value)
    for rel, text in files:
        lines = text.splitlines()
        waivers = parse_waivers(lines)
        for idx, line in enumerate(lines, start=1):
            if "format-version" in waivers.get(idx, {}):
                continue
            for match in FORMAT_CONSTANT.finditer(line):
                constants.append((rel, idx, int(match.group(1))))
            for match in FORMAT_LITERAL.finditer(line):
                literals.append((rel, idx, int(match.group(1))))
    if not literals and not constants:
        return violations
    if not constants:
        violations.append(Violation(
            literals[0][0], literals[0][1], "format-version",
            "format literals found but no kSweepFormatVersion definition "
            f"(expected in {FORMAT_VERSION_HEADER})"))
        return violations
    if len({value for _, _, value in constants}) > 1:
        rel, line_no, _ = constants[1]
        violations.append(Violation(
            rel, line_no, "format-version",
            "conflicting kSweepFormatVersion definitions"))
        return violations
    version = constants[0][2]
    for rel, line_no, value in literals:
        if value != version:
            violations.append(Violation(
                rel, line_no, "format-version",
                f"format literal says v{value} but kSweepFormatVersion is "
                f"{version}; serialization changes must bump the version "
                f"constant and every literal together"))
    return violations


def check_diff_version_bump(root, ref):
    """A diff that touches a serialization file must touch the version
    header too (changing what the bytes mean without bumping the version
    silently corrupts every warm cache)."""
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            cwd=root, capture_output=True, text=True, check=True).stdout
        # Untracked files are part of "the change" too (a brand-new
        # format_version.hpp must satisfy the rule before its first commit).
        out += subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=root, capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError) as error:
        print(f"nrn_lint: cannot diff against '{ref}': {error}", file=sys.stderr)
        return None
    changed = {line.strip() for line in out.splitlines() if line.strip()}
    touched = sorted(changed.intersection(SERIALIZATION_FILES))
    if touched and FORMAT_VERSION_HEADER not in changed:
        return [Violation(
            path, 0, "format-version",
            f"serialization file changed relative to {ref} without touching "
            f"{FORMAT_VERSION_HEADER}; if the record/shard/cache bytes "
            "changed, bump kSweepFormatVersion (and regenerate goldens); "
            "if they provably did not, waive with "
            "// nrn-lint: allow(format-version): <why>")
        for path in touched]
    return []


def collect_files(root, explicit):
    files = []
    if explicit:
        for path in explicit:
            rel = os.path.relpath(path, root) if os.path.isabs(path) else path
            files.append((rel, os.path.join(root, rel)))
        return files
    for scan_dir in DEFAULT_SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if name.endswith(CXX_SUFFIXES):
                    full = os.path.join(dirpath, name)
                    files.append((os.path.relpath(full, root), full))
    files.sort()
    return files


def run_lint(root, explicit, diff_ref=None):
    loaded = []
    for rel, full in collect_files(root, explicit):
        try:
            with open(full, encoding="utf-8", errors="replace") as handle:
                loaded.append((rel, handle.read()))
        except OSError as error:
            print(f"nrn_lint: cannot read {full}: {error}", file=sys.stderr)
            return None
    violations = []
    for rel, text in loaded:
        violations.extend(lint_file(rel, text))
    violations.extend(check_format_versions(loaded))
    if diff_ref is not None:
        diff_violations = check_diff_version_bump(root, diff_ref)
        if diff_violations is None:
            return None
        violations.extend(diff_violations)
    return violations


# ------------------------------------------------------------- self-test

EXPECT = re.compile(r"//\s*expect:\s*([a-z-]+)")


def self_test(root):
    """Each fixture declares the rules it must trip via `// expect: <rule>`
    comments (one per expected violation).  A fixture is linted as its own
    one-file tree, so fixtures cannot interfere with each other; the clean
    and waived fixtures declare nothing and must produce nothing."""
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"nrn_lint: no fixture directory at {fixture_dir}", file=sys.stderr)
        return 1
    failures = 0
    fixtures = sorted(name for name in os.listdir(fixture_dir)
                      if name.endswith(CXX_SUFFIXES))
    if not fixtures:
        print("nrn_lint: fixture directory is empty", file=sys.stderr)
        return 1
    for name in fixtures:
        full = os.path.join(fixture_dir, name)
        with open(full, encoding="utf-8") as handle:
            text = handle.read()
        expected = sorted(EXPECT.findall(text))
        violations = lint_file(name, text)
        violations.extend(check_format_versions([(name, text)]))
        actual = sorted(v.rule for v in violations)
        if actual != expected:
            failures += 1
            print(f"nrn_lint self-test FAIL {name}: expected {expected or ['<clean>']},"
                  f" got {actual or ['<clean>']}", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
        else:
            print(f"nrn_lint self-test ok   {name}: "
                  f"{', '.join(expected) if expected else 'clean'}")
    if failures:
        print(f"nrn_lint self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"nrn_lint self-test: {len(fixtures)} fixtures passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="nrn_lint", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--diff", metavar="REF", default=None,
                        help="also require a format-version bump when the "
                             "diff against REF touches serialization files")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixtures under tests/lint_fixtures/ "
                             "against their embedded expectations")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: src/ tools/ bench/)")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)

    if args.self_test:
        return self_test(root)

    violations = run_lint(root, args.files, args.diff)
    if violations is None:
        return 2
    for violation in sorted(violations, key=lambda v: (v.path, v.line_no)):
        print(violation)
    if violations:
        rules = sorted({v.rule for v in violations})
        print(f"nrn_lint: {len(violations)} violation(s) [{', '.join(rules)}]",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

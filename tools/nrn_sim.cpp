// nrn_sim -- command-line driver for the noisy radio network simulator.
//
// Runs any broadcast algorithm in the library on any built-in topology
// under any fault model, with seeded trials and optional per-round traces.
//
//   nrn_sim --topology=path:512 --algorithm=decay --fault=receiver:0.3
//   nrn_sim --topology=grid:16x16 --algorithm=rlnc-decay --k=32 --trials=5
//   nrn_sim --topology=star:1024 --algorithm=greedy --k=64 \
//           --fault=combined:0.2:0.2 --seed=7 --csv
//
// Exit status: 0 if every trial completed, 1 otherwise, 2 on usage errors.
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "core/greedy_router.hpp"
#include "core/bipartite_pipeline.hpp"
#include "core/multi_message.hpp"
#include "core/robust_fastbc.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"
#include "topology/wct.hpp"

namespace {

using namespace nrn;

struct Options {
  std::string topology = "path:64";
  std::string algorithm = "decay";
  std::string fault = "none";
  std::int64_t k = 1;
  std::uint64_t seed = 1;
  int trials = 1;
  bool csv = false;
  bool trace = false;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: nrn_sim [--topology=SPEC] [--algorithm=NAME] "
               "[--fault=SPEC]\n"
            << "               [--k=N] [--seed=N] [--trials=N] [--csv] "
               "[--trace]\n\n"
            << "topologies: path:n  star:leaves  grid:RxC  gnp:n:p  tree:n\n"
            << "            hypercube:d  caterpillar:spine:legs  "
               "ring:cliques:size\n"
            << "            complete:n  link  wct:budget\n"
            << "algorithms: decay fastbc robust rlnc-decay rlnc-robust\n"
            << "            pipeline greedy\n"
            << "faults:     none  sender:p  receiver:p  combined:ps:pr\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) parts.push_back(item);
  return parts;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--topology") {
      opt.topology = value;
    } else if (key == "--algorithm") {
      opt.algorithm = value;
    } else if (key == "--fault") {
      opt.fault = value;
    } else if (key == "--k") {
      opt.k = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--trials") {
      opt.trials = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "--csv") {
      opt.csv = true;
    } else if (key == "--trace") {
      opt.trace = true;
    } else if (key == "--help" || key == "-h") {
      usage("help requested");
    } else {
      usage("unknown flag '" + key + "'");
    }
  }
  if (opt.k < 1) usage("--k must be positive");
  if (opt.trials < 1) usage("--trials must be positive");
  return opt;
}

graph::Graph build_topology(const std::string& spec, Rng& rng) {
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  auto arg_at = [&](std::size_t i) -> std::int64_t {
    if (i >= parts.size()) usage("topology '" + spec + "' missing argument");
    return std::strtoll(parts[i].c_str(), nullptr, 10);
  };
  if (kind == "path") return graph::make_path(static_cast<graph::NodeId>(arg_at(1)));
  if (kind == "star") return graph::make_star(static_cast<graph::NodeId>(arg_at(1)));
  if (kind == "complete")
    return graph::make_complete(static_cast<graph::NodeId>(arg_at(1)));
  if (kind == "grid") {
    const auto dims = split(parts.size() > 1 ? parts[1] : "", 'x');
    if (dims.size() != 2) usage("grid wants RxC");
    return graph::make_grid(
        static_cast<graph::NodeId>(std::strtoll(dims[0].c_str(), nullptr, 10)),
        static_cast<graph::NodeId>(std::strtoll(dims[1].c_str(), nullptr, 10)));
  }
  if (kind == "gnp") {
    if (parts.size() < 3) usage("gnp wants n:p");
    return graph::make_connected_gnp(
        static_cast<graph::NodeId>(arg_at(1)),
        std::strtod(parts[2].c_str(), nullptr), rng);
  }
  if (kind == "tree")
    return graph::make_random_tree(static_cast<graph::NodeId>(arg_at(1)), rng);
  if (kind == "hypercube")
    return graph::make_hypercube(static_cast<std::int32_t>(arg_at(1)));
  if (kind == "caterpillar")
    return graph::make_caterpillar(static_cast<graph::NodeId>(arg_at(1)),
                                   static_cast<graph::NodeId>(arg_at(2)));
  if (kind == "ring")
    return graph::make_ring_of_cliques(static_cast<graph::NodeId>(arg_at(1)),
                                       static_cast<graph::NodeId>(arg_at(2)));
  if (kind == "link") return graph::make_single_link();
  if (kind == "wct") {
    const auto params = topology::WctParams::from_node_budget(
        static_cast<std::int32_t>(arg_at(1)));
    topology::WctNetwork wct(params, rng);
    return wct.graph();  // structure only; schedules use the bench binaries
  }
  usage("unknown topology '" + kind + "'");
}

radio::FaultModel build_fault(const std::string& spec) {
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  auto prob_at = [&](std::size_t i) -> double {
    if (i >= parts.size()) usage("fault '" + spec + "' missing probability");
    return std::strtod(parts[i].c_str(), nullptr);
  };
  if (kind == "none") return radio::FaultModel::faultless();
  if (kind == "sender") return radio::FaultModel::sender(prob_at(1));
  if (kind == "receiver") return radio::FaultModel::receiver(prob_at(1));
  if (kind == "combined")
    return radio::FaultModel::combined(prob_at(1), prob_at(2));
  usage("unknown fault model '" + kind + "'");
}

struct TrialOutcome {
  bool completed = false;
  std::int64_t rounds = 0;
};

TrialOutcome run_trial(const Options& opt, const graph::Graph& g,
                       radio::FaultModel fm, std::uint64_t trial_seed) {
  radio::RadioNetwork net(g, fm, Rng(trial_seed));
  Rng algo_rng(trial_seed ^ 0x1234abcdULL);
  TrialOutcome out;
  if (opt.algorithm == "decay") {
    const auto r = core::Decay().run(net, 0, algo_rng);
    out = {r.completed, r.rounds};
  } else if (opt.algorithm == "fastbc") {
    core::Fastbc algo(g, 0);
    const auto r = algo.run(net, algo_rng);
    out = {r.completed, r.rounds};
  } else if (opt.algorithm == "robust") {
    core::RobustFastbcParams params;
    params.window_multiplier =
        core::RobustFastbc::recommended_window_multiplier(fm.effective_loss());
    core::RobustFastbc algo(g, 0, params);
    const auto r = algo.run(net, algo_rng);
    out = {r.completed, r.rounds};
  } else if (opt.algorithm == "rlnc-decay" || opt.algorithm == "rlnc-robust") {
    core::MultiMessageParams params;
    params.k = static_cast<std::size_t>(opt.k);
    params.pattern = opt.algorithm == "rlnc-decay"
                         ? core::MultiPattern::kDecay
                         : core::MultiPattern::kRobustFastbc;
    core::RlncBroadcast algo(g, 0, params);
    const auto r = algo.run(net, algo_rng);
    out = {r.completed, r.rounds};
  } else if (opt.algorithm == "pipeline") {
    core::PipelineParams params;
    params.k = opt.k;
    const auto r = core::run_layered_pipeline_routing(net, 0, params, algo_rng);
    out = {r.completed, r.rounds};
  } else if (opt.algorithm == "greedy") {
    core::GreedyRouterParams params;
    params.k = opt.k;
    const auto r = core::run_greedy_adaptive_routing(net, 0, params);
    out = {r.completed, r.rounds};
  } else {
    usage("unknown algorithm '" + opt.algorithm + "'");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  Rng topo_rng(opt.seed ^ 0xfeedULL);
  const graph::Graph g = build_topology(opt.topology, topo_rng);
  const radio::FaultModel fm = build_fault(opt.fault);

  TableWriter table("nrn_sim " + opt.algorithm + " on " + opt.topology +
                        " under " + to_string(fm),
                    {"trial", "rounds", "completed", "rounds/message"});
  table.add_note("n = " + std::to_string(g.node_count()) +
                 ", edges = " + std::to_string(g.edge_count()) +
                 ", k = " + std::to_string(opt.k) +
                 ", seed = " + std::to_string(opt.seed));

  std::vector<double> rounds;
  bool all_completed = true;
  for (int t = 0; t < opt.trials; ++t) {
    const auto outcome = run_trial(opt, g, fm, opt.seed + 1000003ULL * t);
    all_completed = all_completed && outcome.completed;
    rounds.push_back(static_cast<double>(outcome.rounds));
    table.add_row({fmt(t), fmt(outcome.rounds), verdict(outcome.completed),
                   fmt(static_cast<double>(outcome.rounds) /
                           static_cast<double>(opt.k),
                       2)});
  }
  const auto s = summarize(rounds);
  table.add_note("median rounds: " + fmt(s.median, 0) + ", mean " +
                 fmt(s.mean, 1) + " +/- " + fmt(ci95_halfwidth(s), 1));
  if (opt.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  return all_completed ? 0 : 1;
}

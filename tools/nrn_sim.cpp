// nrn_sim -- command-line driver for the noisy radio network simulator.
//
// A thin shell over the library's Scenario / ProtocolRegistry / Driver API:
// all spec parsing, protocol selection, and the trial loop live in src/sim.
//
//   nrn_sim --topology=path:512 --algorithm=decay --fault=receiver:0.3
//   nrn_sim --topology=grid:16x16 --algorithm=rlnc-decay --k=32 --trials=5
//   nrn_sim --topology=star:1024 --algorithm=greedy --k=64 --fault=combined:0.2:0.2 --csv
//   nrn_sim --list
//
// Exit status: 0 if every trial completed, 1 otherwise, 2 on usage errors
// (unknown flags, malformed specs, non-numeric values).
#include <cstdint>
#include <iostream>
#include <string>

#include "sim/sim.hpp"

namespace {

using namespace nrn;

enum class Format { kTable, kCsv, kJson };

struct Options {
  std::string topology = "path:64";
  std::string algorithm = "decay";
  std::string fault = "none";
  std::int64_t source = 0;
  std::int64_t k = 1;
  std::uint64_t seed = 1;
  std::int64_t trials = 1;
  std::int64_t threads = 1;
  Format format = Format::kTable;
  bool list = false;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: nrn_sim [--topology=SPEC] [--algorithm=NAME] "
               "[--fault=SPEC]\n"
            << "               [--source=N] [--k=N] [--seed=N] [--trials=N]\n"
            << "               [--threads=N] [--csv] [--json] [--list]\n\n"
            << "topologies: path:n  cycle:n  star:leaves  complete:n  "
               "grid:RxC\n"
            << "            gnp:n:p  tree:n  binary-tree:n  hypercube:d\n"
            << "            caterpillar:spine:legs  ring:cliques:size\n"
            << "            barbell:clique:bridge  lollipop:clique:tail\n"
            << "            regular:n:d  link  wct:budget\n"
            << "algorithms:";
  for (const auto& name : sim::ProtocolRegistry::global().names())
    std::cerr << " " << name;
  std::cerr << "\nfaults:     none  sender:p  receiver:p  combined:ps:pr\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto int_value = [](const std::string& key, const std::string& value) {
    try {
      return sim::parse_spec_int(value, key);
    } catch (const sim::SpecError& e) {
      usage(e.what());
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--topology") {
      opt.topology = value;
    } else if (key == "--algorithm") {
      opt.algorithm = value;
    } else if (key == "--fault") {
      opt.fault = value;
    } else if (key == "--source") {
      opt.source = int_value(key, value);
    } else if (key == "--k") {
      opt.k = int_value(key, value);
    } else if (key == "--seed") {
      try {
        opt.seed = sim::parse_spec_uint(value, key);
      } catch (const sim::SpecError& e) {
        usage(e.what());
      }
    } else if (key == "--trials") {
      opt.trials = int_value(key, value);
    } else if (key == "--threads") {
      opt.threads = int_value(key, value);
    } else if (key == "--csv") {
      opt.format = Format::kCsv;
    } else if (key == "--json") {
      opt.format = Format::kJson;
    } else if (key == "--list") {
      opt.list = true;
    } else if (key == "--help" || key == "-h") {
      usage("help requested");
    } else {
      usage("unknown flag '" + key + "'");
    }
  }
  if (opt.k < 1) usage("--k must be positive");
  if (opt.trials < 1) usage("--trials must be positive");
  if (opt.threads < 1) usage("--threads must be positive");
  if (opt.source < 0) usage("--source must be non-negative");
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  auto& registry = sim::ProtocolRegistry::global();

  if (opt.list) {
    for (const auto& name : registry.names())
      std::cout << name << "  --  " << registry.description(name) << "\n";
    return 0;
  }

  try {
    const auto scenario = sim::Scenario::parse(
        opt.topology, opt.fault, static_cast<graph::NodeId>(opt.source),
        opt.k, opt.seed);
    sim::DriverOptions driver_options;
    driver_options.threads = static_cast<int>(opt.threads);
    const auto report = sim::Driver(registry).run(
        scenario, opt.algorithm, static_cast<int>(opt.trials), driver_options);
    switch (opt.format) {
      case Format::kTable:
        sim::write_table(std::cout, report);
        break;
      case Format::kCsv:
        sim::write_csv(std::cout, report);
        break;
      case Format::kJson:
        sim::write_json(std::cout, report);
        break;
    }
    return report.all_completed() ? 0 : 1;
  } catch (const sim::SpecError& e) {
    usage(e.what());
  } catch (const nrn::ContractViolation& e) {
    usage(e.what());
  }
}

// nrn_sim -- command-line driver for the noisy radio network simulator.
//
// A thin shell over the library's Scenario / ProtocolRegistry / Driver /
// SweepPlan API: all spec parsing, protocol selection, and the trial and
// cell loops live in src/sim.
//
//   nrn_sim --topology=path:512 --algorithm=decay --fault=receiver:0.3
//   nrn_sim --topology=grid:16x16 --algorithm=rlnc-decay --k=32 --trials=5
//   nrn_sim --topology=star:1024 --algorithm=greedy --k=64 --fault=combined:0.2:0.2 --csv
//   nrn_sim protocols          (capabilities + theory bounds per protocol)
//
//   nrn_sim sweep "--plan=topology=path:{64..256*2}; protocols=decay,robust;
//                  fault=receiver:{0.1,0.3}; trials=5; seed=7" --csv
//   nrn_sim sweep --plan=... --shard=0/2 --out=shard0.nrns
//   nrn_sim sweep --plan=... --shard=1/2 --out=shard1.nrns
//   nrn_sim sweep --merge=shard0.nrns,shard1.nrns --out=merged.nrns --csv
//
//   nrn_sim serve --socket=/run/nrn.sock --cache-dir=cache --cell-threads=4
//   nrn_sim submit --socket=/run/nrn.sock --plan=... --progress --csv
//   nrn_sim status --socket=/run/nrn.sock
//   nrn_sim shutdown --socket=/run/nrn.sock
//
// Exit status: 0 if every trial completed, 1 otherwise, 2 on usage errors
// (unknown flags, malformed specs/plans, non-numeric values).
#include <algorithm>
#include <clocale>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/ticker.hpp"
#include "sim/sim.hpp"

namespace {

using namespace nrn;

enum class Format { kTable, kCsv, kJson };

struct Options {
  std::string topology = "path:64";
  std::string algorithm = "decay";
  std::string fault = "none";
  std::string channel = "none";
  std::int64_t source = 0;
  std::int64_t k = 1;
  std::uint64_t seed = 1;
  std::int64_t trials = 1;
  std::int64_t threads = 1;
  Format format = Format::kTable;
  bool list = false;
  bool trace = false;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: nrn_sim [--topology=SPEC] [--algorithm=NAME] "
               "[--fault=SPEC]\n"
            << "               [--channel=SPEC] [--source=N] [--k=N] "
               "[--seed=N] [--trials=N]\n"
            << "               [--threads=N] [--trace] [--csv] [--json] "
               "[--list]\n"
            << "       nrn_sim protocols   (list protocols with "
               "capabilities)\n"
            << "       nrn_sim topologies  (list topology families with "
               "their arguments)\n"
            << "       nrn_sim sweep --plan=PLAN [--shard=I/K] "
               "[--cache-dir=DIR]\n"
            << "               [--fleet | --resume] [--claim-ttl=SECONDS]\n"
            << "               [--cell-threads=N] [--threads=N] [--out=FILE]\n"
            << "               [--csv] [--json]\n"
            << "       nrn_sim sweep --merge=FILE[,FILE...] [--out=FILE] "
               "[--csv] [--json]\n"
            << "       nrn_sim serve --socket=PATH --cache-dir=DIR "
               "[--tcp-port=N]\n"
            << "               [--cell-threads=N] [--threads=N] "
               "[--claim-ttl=SECONDS]\n"
            << "       nrn_sim submit (--socket=PATH | --tcp-port=N) "
               "--plan=PLAN\n"
            << "               [--progress] [--out=FILE] [--csv] [--json]\n"
            << "       nrn_sim status (--socket=PATH | --tcp-port=N)\n"
            << "       nrn_sim shutdown (--socket=PATH | --tcp-port=N)\n\n"
            << "topologies: path:n  cycle:n  star:leaves  complete:n  "
               "grid:RxC\n"
            << "            gnp:n:p  tree:n  binary-tree:n  hypercube:d\n"
            << "            caterpillar:spine:legs  ring:cliques:size\n"
            << "            barbell:clique:bridge  lollipop:clique:tail\n"
            << "            regular:n:d  link  wct:budget  wct:M:L:C:S\n"
            << "            disk:n:radius[:power]  uniform:n:density\n"
            << "algorithms:";
  for (const auto& name : sim::extended_registry().names())
    std::cerr << " " << name;
  std::cerr << "\nfaults:     none  sender:p  receiver:p  combined:ps:pr\n"
            << "channels:   none  sinr:alpha:noise:beta  (sinr needs a "
               "geometric\n"
            << "            topology -- disk or uniform -- and fault=none)\n"
            << "plans:      topology=...; protocols=...; fault=...; "
               "channel=...; k=...;\n"
            << "            trials=N; seed=N; source=N; trace=0|1  (lists "
               "expand {a,b},\n"
            << "            {lo..hi*f}, {lo..hi+d})\n"
            << "tracing:    --trace / trace=1 records per-round series "
               "(informed,\n"
            << "            deliveries, collisions, broadcasters) for "
               "protocols that\n"
            << "            support it; reports gain convergence (r50/r90/"
               "r100) columns,\n"
            << "            JSON series blocks, and long-format CSV rows\n"
            << "sharding:   --shard=I/K runs cells with index mod K == I "
               "(0-based); --out\n"
            << "            writes a mergeable shard file\n"
            << "fleet:      --fleet claims cells dynamically over a shared "
               "--cache-dir\n"
            << "            (work stealing, resumable: re-invoke to finish "
               "a killed run);\n"
            << "            --resume rebuilds the report from a warm cache "
               "without\n"
            << "            computing; --claim-ttl=SECONDS expires dead "
               "workers' claims\n"
            << "serving:    `serve` runs the sweep daemon over a shared "
               "cache; `submit`\n"
            << "            streams a plan's progress and report from it; "
               "--progress\n"
            << "            renders a live ticker on stderr (also for "
               "`sweep`)\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto int_value = [](const std::string& key, const std::string& value) {
    try {
      return sim::parse_spec_int(value, key);
    } catch (const sim::SpecError& e) {
      usage(e.what());
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--topology") {
      opt.topology = value;
    } else if (key == "--algorithm") {
      opt.algorithm = value;
    } else if (key == "--fault") {
      opt.fault = value;
    } else if (key == "--channel") {
      opt.channel = value;
    } else if (key == "--source") {
      opt.source = int_value(key, value);
    } else if (key == "--k") {
      opt.k = int_value(key, value);
    } else if (key == "--seed") {
      try {
        opt.seed = sim::parse_spec_uint(value, key);
      } catch (const sim::SpecError& e) {
        usage(e.what());
      }
    } else if (key == "--trials") {
      opt.trials = int_value(key, value);
    } else if (key == "--threads") {
      opt.threads = int_value(key, value);
    } else if (key == "--trace") {
      opt.trace = true;
    } else if (key == "--csv") {
      opt.format = Format::kCsv;
    } else if (key == "--json") {
      opt.format = Format::kJson;
    } else if (key == "--list") {
      opt.list = true;
    } else if (key == "--help" || key == "-h") {
      usage("help requested");
    } else {
      usage("unknown flag '" + key + "'");
    }
  }
  if (opt.k < 1) usage("--k must be positive");
  if (opt.trials < 1) usage("--trials must be positive");
  if (opt.threads < 1) usage("--threads must be positive");
  if (opt.source < 0) usage("--source must be non-negative");
  return opt;
}

// ------------------------------------------------------------------ sweep

struct SweepCliOptions {
  std::string plan;
  std::vector<std::string> merge_files;
  sim::SweepOptions run;
  std::string out_file;
  Format format = Format::kTable;
};

SweepCliOptions parse_sweep_args(int argc, char** argv) {
  SweepCliOptions opt;
  auto int_value = [](const std::string& key, const std::string& value) {
    try {
      return sim::parse_spec_int(value, key);
    } catch (const sim::SpecError& e) {
      usage(e.what());
    }
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--plan") {
      opt.plan = value;
    } else if (key == "--merge") {
      std::stringstream files(value);
      std::string file;
      while (std::getline(files, file, ','))
        if (!file.empty()) opt.merge_files.push_back(file);
      if (opt.merge_files.empty()) usage("--merge needs at least one file");
    } else if (key == "--shard") {
      const auto slash = value.find('/');
      if (slash == std::string::npos) usage("--shard wants I/K (0-based I)");
      const std::int64_t index =
          int_value("--shard index", value.substr(0, slash));
      const std::int64_t count =
          int_value("--shard count", value.substr(slash + 1));
      if (count < 1 || count > 1'000'000 || index < 0 || index >= count)
        usage("--shard=I/K needs 0 <= I < K (K at most 1000000)");
      opt.run.shard_index = static_cast<int>(index);
      opt.run.shard_count = static_cast<int>(count);
    } else if (key == "--cache-dir") {
      if (value.empty()) usage("--cache-dir needs a directory");
      opt.run.cache_dir = value;
    } else if (key == "--fleet") {
      if (opt.run.assignment == sim::SweepAssignment::kResume)
        usage("--fleet and --resume are mutually exclusive");
      opt.run.assignment = sim::SweepAssignment::kFleet;
    } else if (key == "--resume") {
      if (opt.run.assignment == sim::SweepAssignment::kFleet)
        usage("--fleet and --resume are mutually exclusive");
      opt.run.assignment = sim::SweepAssignment::kResume;
    } else if (key == "--claim-ttl") {
      const std::int64_t ttl = int_value(key, value);
      if (ttl < 0) usage("--claim-ttl must be non-negative seconds");
      opt.run.claim_ttl_seconds = static_cast<double>(ttl);
    } else if (key == "--cell-threads") {
      const std::int64_t threads = int_value(key, value);
      if (threads < 1 || threads > 4096)
        usage("--cell-threads must be in [1, 4096]");
      opt.run.cell_threads = static_cast<int>(threads);
    } else if (key == "--threads") {
      const std::int64_t threads = int_value(key, value);
      if (threads < 1 || threads > 4096)
        usage("--threads must be in [1, 4096]");
      opt.run.trial_threads = static_cast<int>(threads);
    } else if (key == "--out") {
      if (value.empty()) usage("--out needs a file name");
      opt.out_file = value;
    } else if (key == "--csv") {
      opt.format = Format::kCsv;
    } else if (key == "--json") {
      opt.format = Format::kJson;
    } else if (key == "--progress") {
      opt.run.on_progress = serve::ProgressTicker(std::cerr);
    } else if (key == "--help" || key == "-h") {
      usage("help requested");
    } else {
      usage("unknown sweep flag '" + key + "'");
    }
  }
  if (opt.plan.empty() == opt.merge_files.empty())
    usage("sweep wants exactly one of --plan or --merge");
  if (!opt.merge_files.empty() &&
      (opt.run.shard_count != 1 || !opt.run.cache_dir.empty() ||
       opt.run.assignment != sim::SweepAssignment::kStatic))
    usage("--merge does not combine with --shard, --cache-dir, --fleet, "
          "or --resume");
  if (opt.run.assignment != sim::SweepAssignment::kStatic) {
    if (opt.run.cache_dir.empty())
      usage("--fleet/--resume need --cache-dir (the shared fleet state)");
    if (opt.run.shard_count != 1)
      usage("--fleet/--resume replace static --shard partitioning");
  }
  return opt;
}

int sweep_main(int argc, char** argv) {
  const SweepCliOptions opt = parse_sweep_args(argc, argv);
  try {
    sim::SweepReport report;
    if (!opt.merge_files.empty()) {
      std::vector<sim::SweepReport> shards;
      for (const auto& file : opt.merge_files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) usage("cannot open shard file '" + file + "'");
        shards.push_back(sim::read_shard_file(in));
      }
      report = sim::merge_sweep_reports(shards);
    } else {
      const auto plan = sim::SweepPlan::parse(opt.plan);
      report = sim::SweepRunner(sim::extended_registry()).run(plan, opt.run);
    }
    if (!opt.out_file.empty()) {
      std::ofstream out(opt.out_file, std::ios::binary | std::ios::trunc);
      if (!out) usage("cannot write '" + opt.out_file + "'");
      sim::write_shard_file(out, report);
    }
    switch (opt.format) {
      case Format::kTable:
        sim::write_sweep_table(std::cout, report);
        break;
      case Format::kCsv:
        sim::write_sweep_csv(std::cout, report);
        break;
      case Format::kJson:
        sim::write_sweep_json(std::cout, report);
        break;
    }
    return report.all_completed() ? 0 : 1;
  } catch (const sim::SpecError& e) {
    usage(e.what());
  } catch (const nrn::ContractViolation& e) {
    usage(e.what());
  }
}

// ------------------------------------------------------------------ serve

serve::SweepServer* g_serve_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

int serve_main(int argc, char** argv) {
  serve::ServerOptions opt;
  auto int_value = [](const std::string& key, const std::string& value) {
    try {
      return sim::parse_spec_int(value, key);
    } catch (const sim::SpecError& e) {
      usage(e.what());
    }
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--socket") {
      if (value.empty()) usage("--socket needs a path");
      opt.socket_path = value;
    } else if (key == "--tcp-port") {
      const std::int64_t port = int_value(key, value);
      if (port < 0 || port > 65535) usage("--tcp-port must be in [0, 65535]");
      opt.tcp_port = static_cast<int>(port);
    } else if (key == "--cache-dir") {
      if (value.empty()) usage("--cache-dir needs a directory");
      opt.cache_dir = value;
    } else if (key == "--cell-threads") {
      const std::int64_t threads = int_value(key, value);
      if (threads < 1 || threads > 4096)
        usage("--cell-threads must be in [1, 4096]");
      opt.scheduler.cell_threads = static_cast<int>(threads);
    } else if (key == "--threads") {
      const std::int64_t threads = int_value(key, value);
      if (threads < 1 || threads > 4096)
        usage("--threads must be in [1, 4096]");
      opt.scheduler.trial_threads = static_cast<int>(threads);
    } else if (key == "--claim-ttl") {
      const std::int64_t ttl = int_value(key, value);
      if (ttl < 0) usage("--claim-ttl must be non-negative seconds");
      opt.scheduler.claim_ttl_seconds = static_cast<double>(ttl);
    } else if (key == "--help" || key == "-h") {
      usage("help requested");
    } else {
      usage("unknown serve flag '" + key + "'");
    }
  }
  if (opt.cache_dir.empty()) usage("serve needs --cache-dir");
  if (opt.socket_path.empty() && opt.tcp_port < 0)
    usage("serve needs --socket and/or --tcp-port");
  try {
    serve::SweepServer server(sim::extended_registry(), opt);
    g_serve_server = &server;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::cerr << "serve: listening";
    if (!opt.socket_path.empty()) std::cerr << " on " << opt.socket_path;
    if (server.tcp_port() >= 0)
      std::cerr << " (tcp 127.0.0.1:" << server.tcp_port() << ")";
    std::cerr << ", cache " << opt.cache_dir << "\n" << std::flush;
    server.run();
    g_serve_server = nullptr;
    std::cerr << "serve: stopped\n";
    return 0;
  } catch (const sim::SpecError& e) {
    usage(e.what());
  }
}

// -------------------------------------------------- serve-client commands

struct ClientCliOptions {
  std::string socket_path;
  int tcp_port = -1;
  std::string plan;
  std::string out_file;
  Format format = Format::kTable;
  bool progress = false;
};

ClientCliOptions parse_client_args(int argc, char** argv, bool wants_plan) {
  ClientCliOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--socket") {
      if (value.empty()) usage("--socket needs a path");
      opt.socket_path = value;
    } else if (key == "--tcp-port") {
      try {
        const std::int64_t port = sim::parse_spec_int(value, key);
        if (port < 1 || port > 65535)
          usage("--tcp-port must be in [1, 65535]");
        opt.tcp_port = static_cast<int>(port);
      } catch (const sim::SpecError& e) {
        usage(e.what());
      }
    } else if (wants_plan && key == "--plan") {
      opt.plan = value;
    } else if (wants_plan && key == "--out") {
      if (value.empty()) usage("--out needs a file name");
      opt.out_file = value;
    } else if (wants_plan && key == "--csv") {
      opt.format = Format::kCsv;
    } else if (wants_plan && key == "--json") {
      opt.format = Format::kJson;
    } else if (wants_plan && key == "--progress") {
      opt.progress = true;
    } else if (key == "--help" || key == "-h") {
      usage("help requested");
    } else {
      usage("unknown flag '" + key + "' for this subcommand");
    }
  }
  if (opt.socket_path.empty() && opt.tcp_port < 0)
    usage("need --socket=PATH or --tcp-port=N to reach the daemon");
  if (wants_plan && opt.plan.empty()) usage("submit needs --plan");
  return opt;
}

serve::LineClient connect_client(const ClientCliOptions& opt) {
  return opt.socket_path.empty()
             ? serve::LineClient::connect_tcp(opt.tcp_port)
             : serve::LineClient::connect_unix(opt.socket_path);
}

/// A reply the daemon must send; EOF or an `error` reply aborts with a
/// usage-style diagnostic.
serve::Message expect_reply(serve::LineClient& client) {
  auto reply = client.recv();
  if (!reply) usage("daemon closed the connection unexpectedly");
  if (reply->type() == "error") usage("daemon: " + reply->str("error"));
  return std::move(*reply);
}

int submit_main(int argc, char** argv) {
  const ClientCliOptions opt = parse_client_args(argc, argv, true);
  try {
    serve::LineClient client = connect_client(opt);
    client.send(serve::Message("submit").set("plan", opt.plan));
    const serve::Message accepted = expect_reply(client);
    if (accepted.type() != "accepted")
      usage("daemon sent unexpected '" + accepted.type() + "'");
    const int plan_id = static_cast<int>(accepted.integer("plan"));

    serve::ProgressTicker ticker(std::cerr);
    sim::SweepProgressEvent event;
    event.total = static_cast<int>(accepted.integer("cells"));
    if (opt.progress) {
      event.kind = sim::SweepProgressEvent::Kind::kAccepted;
      ticker(event);
    }

    std::string report_text;
    int computed = 0, cached = 0;
    while (report_text.empty()) {
      const serve::Message reply = expect_reply(client);
      if (reply.type() == "cell_done") {
        if (static_cast<int>(reply.integer("plan")) != plan_id) continue;
        if (opt.progress) {
          event.kind = sim::SweepProgressEvent::Kind::kCellDone;
          event.done = static_cast<int>(reply.integer("done"));
          event.cell_index = static_cast<int>(reply.integer("cell"));
          event.cached = reply.str("resolution") == "cached";
          event.cell_hash = reply.str("hash");
          event.computed = static_cast<int>(reply.integer("computed"));
          event.cached_cells = static_cast<int>(reply.integer("cached"));
          ticker(event);
        }
      } else if (reply.type() == "plan_done") {
        if (static_cast<int>(reply.integer("plan")) != plan_id) continue;
        report_text = reply.str("report");
        computed = static_cast<int>(reply.integer("computed"));
        cached = static_cast<int>(reply.integer("cached"));
        if (opt.progress) {
          event.kind = sim::SweepProgressEvent::Kind::kPlanDone;
          event.done = event.total;
          event.computed = computed;
          event.cached_cells = cached;
          ticker(event);
        }
      } else if (reply.type() == "plan_failed") {
        usage("daemon: plan failed: " + reply.str("error"));
      } else {
        usage("daemon sent unexpected '" + reply.type() + "'");
      }
    }

    std::istringstream in(report_text);
    const sim::SweepReport report = sim::read_shard_file(in);
    std::cerr << "# serve: plan=" << plan_id << " cells="
              << report.total_cells << " cached=" << cached
              << " computed=" << computed << "\n";
    if (!opt.out_file.empty()) {
      std::ofstream out(opt.out_file, std::ios::binary | std::ios::trunc);
      if (!out) usage("cannot write '" + opt.out_file + "'");
      sim::write_shard_file(out, report);
    }
    switch (opt.format) {
      case Format::kTable:
        sim::write_sweep_table(std::cout, report);
        break;
      case Format::kCsv:
        sim::write_sweep_csv(std::cout, report);
        break;
      case Format::kJson:
        sim::write_sweep_json(std::cout, report);
        break;
    }
    return report.all_completed() ? 0 : 1;
  } catch (const serve::WireError& e) {
    usage(std::string("wire error: ") + e.what());
  } catch (const sim::SpecError& e) {
    usage(e.what());
  }
}

int status_main(int argc, char** argv) {
  const ClientCliOptions opt = parse_client_args(argc, argv, false);
  try {
    serve::LineClient client = connect_client(opt);
    client.send(serve::Message("status"));
    const serve::Message reply = expect_reply(client);
    if (reply.type() != "status")
      usage("daemon sent unexpected '" + reply.type() + "'");
    for (const auto* key :
         {"protocol", "cache_dir", "plans_active", "plans_done",
          "plans_failed", "cells_pending", "cells_running", "cells_computed",
          "cells_cached"}) {
      if (!reply.has(key)) continue;
      std::cout << key << "  ";
      if (key == std::string("protocol") || key == std::string("cache_dir"))
        std::cout << reply.str(key);
      else
        std::cout << reply.integer(key);
      std::cout << "\n";
    }
    return 0;
  } catch (const serve::WireError& e) {
    usage(std::string("wire error: ") + e.what());
  } catch (const sim::SpecError& e) {
    usage(e.what());
  }
}

int shutdown_main(int argc, char** argv) {
  const ClientCliOptions opt = parse_client_args(argc, argv, false);
  try {
    serve::LineClient client = connect_client(opt);
    client.send(serve::Message("shutdown"));
    const serve::Message reply = expect_reply(client);
    if (reply.type() != "bye")
      usage("daemon sent unexpected '" + reply.type() + "'");
    return 0;
  } catch (const serve::WireError& e) {
    usage(std::string("wire error: ") + e.what());
  } catch (const sim::SpecError& e) {
    usage(e.what());
  }
}

// The `protocols` subcommand (and --list): every registered protocol with
// its capability set, whether a theory bound is registered, and the
// one-line description.
int protocols_main() {
  const auto& registry = sim::extended_registry();
  std::size_t name_width = 0, caps_width = 0;
  for (const auto& name : registry.names()) {
    name_width = std::max(name_width, name.size());
    caps_width = std::max(
        caps_width,
        sim::capability_names(registry.capabilities(name)).size());
  }
  for (const auto& name : registry.names()) {
    const std::string caps =
        sim::capability_names(registry.capabilities(name));
    std::cout << name << std::string(name_width - name.size() + 2, ' ')
              << caps << std::string(caps_width - caps.size() + 2, ' ')
              << (registry.has_theory_bound(name) ? "bound " : "-     ")
              << " " << registry.description(name) << "\n";
  }
  return 0;
}

// The `topologies` subcommand: every family the grammar accepts with its
// argument signature and a one-line description.  The list is driven by
// sim::topology_kinds() so a family added to the grammar without a doc
// line here fails loudly instead of printing an incomplete table.
int topologies_main() {
  struct KindDoc {
    const char* kind;
    const char* args;
    const char* doc;
  };
  static constexpr KindDoc kDocs[] = {
      {"barbell", "barbell:clique:bridge",
       "two k-cliques joined by a bridge path"},
      {"binary-tree", "binary-tree:n", "complete binary tree, heap indexing"},
      {"caterpillar", "caterpillar:spine:legs",
       "spine path with pendant leaves per spine node"},
      {"complete", "complete:n", "complete graph K_n"},
      {"cycle", "cycle:n", "cycle on n >= 3 nodes"},
      {"disk", "disk:n:radius[:power]",
       "geometric: n nodes uniform in the unit square, edges within "
       "radius; hosts channel=sinr"},
      {"gnp", "gnp:n:p", "connected Erdos-Renyi G(n, p)"},
      {"grid", "grid:RxC", "R x C grid"},
      {"hypercube", "hypercube:d", "d-dimensional hypercube, 2^d nodes"},
      {"link", "link", "two nodes, one edge (Appendix A)"},
      {"lollipop", "lollipop:clique:tail", "clique with a pendant path"},
      {"path", "path:n", "path 0 - 1 - ... - (n-1)"},
      {"regular", "regular:n:d", "random d-regular-ish pairing model"},
      {"ring", "ring:cliques:size",
       "ring of cliques joined by single edges"},
      {"star", "star:leaves", "hub node 0 with `leaves` leaves"},
      {"tree", "tree:n", "uniform random attachment tree"},
      {"uniform", "uniform:n:density",
       "geometric: n nodes at expected density per unit square, unit-range "
       "edges; hosts channel=sinr"},
      {"wct", "wct:budget | wct:M:L:C:S",
       "weak connectivity tree instance (Lemma 18)"},
  };
  const auto& kinds = sim::topology_kinds();
  std::size_t args_width = 0;
  for (const auto& doc : kDocs)
    args_width = std::max(args_width, std::string(doc.args).size());
  for (const auto& kind : kinds) {
    const KindDoc* found = nullptr;
    for (const auto& doc : kDocs)
      if (kind == doc.kind) found = &doc;
    if (found == nullptr) {
      std::cerr << "error: topology kind '" << kind
                << "' has no doc line in nrn_sim topologies\n";
      return 2;
    }
    const std::string args = found->args;
    std::cout << args << std::string(args_width - args.size() + 2, ' ')
              << found->doc << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Honor the environment's locale for the process at large: this is what a
  // localized deployment does, and it is exactly the configuration the
  // locale-independent numeric round-trips (common/numio) must survive.
  // CI runs the smoke suites under LC_ALL=de_DE.UTF-8 to prove it.
  // Deliberate and safe: called once before any thread exists.
  std::setlocale(LC_ALL, "");  // NOLINT(concurrency-mt-unsafe)
  if (argc > 1 && std::string(argv[1]) == "sweep")
    return sweep_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "serve")
    return serve_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "submit")
    return submit_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "status")
    return status_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "shutdown")
    return shutdown_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "protocols") return protocols_main();
  if (argc > 1 && std::string(argv[1]) == "topologies")
    return topologies_main();
  const Options opt = parse_args(argc, argv);
  const auto& registry = sim::extended_registry();

  if (opt.list) return protocols_main();

  try {
    const auto scenario = sim::Scenario::parse(
        opt.topology, opt.fault, static_cast<graph::NodeId>(opt.source),
        opt.k, opt.seed, opt.channel);
    sim::DriverOptions driver_options;
    driver_options.threads = static_cast<int>(opt.threads);
    driver_options.trace = opt.trace;
    const auto report = sim::Driver(registry).run(
        scenario, opt.algorithm, static_cast<int>(opt.trials), driver_options);
    switch (opt.format) {
      case Format::kTable:
        sim::write_table(std::cout, report);
        break;
      case Format::kCsv:
        sim::write_csv(std::cout, report);
        break;
      case Format::kJson:
        sim::write_json(std::cout, report);
        break;
    }
    return report.all_completed() ? 0 : 1;
  } catch (const sim::SpecError& e) {
    usage(e.what());
  } catch (const nrn::ContractViolation& e) {
    usage(e.what());
  }
}

#!/usr/bin/env python3
"""Run clang-tidy over the compilation database and gate on a baseline.

The repo's .clang-tidy carries the curated check set; this wrapper makes
it enforceable:

  * runs clang-tidy (parallel) over every first-party entry in
    <build-dir>/compile_commands.json (src/, tools/; bench and tests are
    compiled with the same flags but are not part of the gate),
  * normalizes findings to `<relative-file>:<check>` pairs -- line numbers
    deliberately excluded, so unrelated edits do not invalidate the
    baseline,
  * compares against tools/clang_tidy_baseline.txt: any finding not in the
    baseline fails (exit 1); baseline entries that no longer fire are
    reported so the file can be shrunk.

The baseline is committed EMPTY: the tree is warn-free against the
curated checks, and the gate's job is keeping it that way.  If a
toolchain update introduces findings that cannot be fixed immediately,
run with --update-baseline, commit the result, and file the cleanup.

Exit codes: 0 clean, 1 new findings (or clang-tidy crashed), 77 skipped
(no clang-tidy binary or no compilation database) -- CTest maps 77 to
SKIPPED via SKIP_RETURN_CODE.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

FINDING = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): .* \[(?P<checks>[^\]]+)\]\s*$")

GATED_PREFIXES = ("src/", "tools/")
SKIP_EXIT = 77


def find_clang_tidy():
    for name in ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                 "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def gated_sources(entries, root):
    seen = {}
    for entry in entries:
        full = os.path.normpath(os.path.join(entry.get("directory", root),
                                             entry["file"]))
        rel = os.path.relpath(full, root)
        if rel.startswith(GATED_PREFIXES):
            seen.setdefault(rel, full)
    return sorted(seen.items())


def run_one(clang_tidy, build_dir, root, rel, full):
    """Returns (rel, findings, crashed, output)."""
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", full],
        capture_output=True, text=True, cwd=root)
    findings = set()
    for line in proc.stdout.splitlines():
        match = FINDING.match(line)
        if not match:
            continue
        where = os.path.relpath(
            os.path.normpath(os.path.join(root, match.group("file"))), root)
        if not where.startswith(GATED_PREFIXES):
            continue  # system or third-party header noise
        for check in match.group("checks").split(","):
            findings.add(f"{where}:{check.strip()}")
    # clang-tidy exits nonzero when WarningsAsErrors fired (expected; the
    # findings carry the signal) -- only a crash with no parseable output
    # is a hard failure.
    crashed = proc.returncode != 0 and not findings and (
        "error:" in proc.stderr or "Segmentation" in proc.stderr)
    return rel, findings, crashed, proc.stderr if crashed else ""


def main(argv):
    parser = argparse.ArgumentParser(prog="run_clang_tidy",
                                     description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--build-dir", default="build",
                        help="build dir containing compile_commands.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default tools/clang_tidy_baseline.txt)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 2)
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    build_dir = os.path.abspath(args.build_dir)
    baseline_path = args.baseline or os.path.join(root, "tools",
                                                  "clang_tidy_baseline.txt")

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("run_clang_tidy: no clang-tidy binary on PATH; skipping "
              "(install clang-tidy to run the gate locally)")
        return SKIP_EXIT
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"run_clang_tidy: {db_path} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first; skipping")
        return SKIP_EXIT
    with open(db_path, encoding="utf-8") as handle:
        sources = gated_sources(json.load(handle), root)
    if not sources:
        print("run_clang_tidy: compilation database has no src/ or tools/ "
              "entries; skipping")
        return SKIP_EXIT

    findings = set()
    crashes = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, build_dir, root, rel, full)
                   for rel, full in sources]
        for future in concurrent.futures.as_completed(futures):
            rel, file_findings, crashed, err = future.result()
            findings.update(file_findings)
            if crashed:
                crashes.append((rel, err.strip().splitlines()[-1] if err else ""))
    print(f"run_clang_tidy: {len(sources)} file(s), "
          f"{len(findings)} finding(s)")

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write("# clang-tidy baseline: `<file>:<check>` per line.\n"
                         "# Regenerate with tools/run_clang_tidy.py "
                         "--update-baseline; shrink whenever possible.\n")
            for item in sorted(findings):
                handle.write(item + "\n")
        print(f"run_clang_tidy: baseline rewritten with {len(findings)} "
              f"entr(ies) at {baseline_path}")
        return 0

    baseline = set()
    if os.path.isfile(baseline_path):
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = {line.strip() for line in handle
                        if line.strip() and not line.startswith("#")}

    new = sorted(findings - baseline)
    resolved = sorted(baseline - findings)
    for item in new:
        print(f"NEW finding (not in baseline): {item}")
    for item in resolved:
        print(f"resolved baseline entry (remove it): {item}")
    for rel, err in crashes:
        print(f"clang-tidy crashed on {rel}: {err}", file=sys.stderr)
    if new or crashes:
        print(f"run_clang_tidy: FAIL ({len(new)} new finding(s), "
              f"{len(crashes)} crash(es))", file=sys.stderr)
        return 1
    print("run_clang_tidy: clean against baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
